package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"encdns/internal/dataset"
	"encdns/internal/stats"
)

// sharedRunner amortises the campaign across the test suite; tests must
// not mutate it.
var sharedRunner = New(1, 60)

func TestRunnerCachesCampaign(t *testing.T) {
	r := New(2, 5)
	a, err := r.Results()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Results()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Results ran the campaign twice")
	}
	if a.Len() == 0 {
		t.Error("empty campaign")
	}
}

func TestCampaignScale(t *testing.T) {
	rs := sharedRunner.MustResults()
	// 7 vantages × 75 resolvers × (3 domains + 1 ping) × 60 rounds.
	want := 7 * 75 * 4 * 60
	if rs.Len() != want {
		t.Errorf("records = %d, want %d", rs.Len(), want)
	}
}

func TestAllShapeChecksPass(t *testing.T) {
	checks, err := sharedRunner.ShapeChecks()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 12 {
		t.Fatalf("only %d checks evaluated", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("FAILED claim %q: %s", c.Name, c.Detail)
		}
	}
}

func TestRenderChecks(t *testing.T) {
	var buf bytes.Buffer
	checks := []Check{{Name: "demo", Pass: true, Detail: "ok"}, {Name: "bad", Pass: false, Detail: "boom"}}
	if err := RenderChecks(&buf, checks); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[PASS] demo") || !strings.Contains(out, "[FAIL] bad") {
		t.Errorf("render = %s", out)
	}
}

func TestAllFigurePanelsBuild(t *testing.T) {
	for _, id := range AllFigures() {
		chart, err := sharedRunner.Figure(id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(chart.Rows) == 0 {
			t.Fatalf("figure %s has no rows", id)
		}
		// Rows must be median-sorted ascending.
		for i := 1; i < len(chart.Rows); i++ {
			if chart.Rows[i].Response.Q2 < chart.Rows[i-1].Response.Q2 {
				t.Errorf("figure %s rows not sorted at %d", id, i)
			}
		}
		var buf bytes.Buffer
		if err := chart.Render(&buf); err != nil {
			t.Fatalf("figure %s render: %v", id, err)
		}
		if !strings.Contains(buf.String(), "ms") {
			t.Errorf("figure %s render empty", id)
		}
	}
}

func TestFigureRowCountsMatchPaper(t *testing.T) {
	cases := map[FigureID]int{Fig1: 21, Fig2a: 21, Fig3c: 37, Fig4d: 18}
	for id, want := range cases {
		chart, err := sharedRunner.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(chart.Rows) != want {
			t.Errorf("%s rows = %d, want %d", id, len(chart.Rows), want)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := sharedRunner.Figure(FigureID("fig99")); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigure1MainstreamCluster(t *testing.T) {
	// In Figure 1 (Ohio), the mainstream resolvers sit in the fast half
	// and the ODoH Sweden targets anchor the slow end.
	chart, err := sharedRunner.Figure(Fig1)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, row := range chart.Rows {
		pos[strings.TrimPrefix(strings.TrimSuffix(row.Label, "**"), "**")] = i
	}
	for _, fast := range []string{"dns.google", "dns9.quad9.net", "security.cloudflare-dns.com"} {
		if pos[fast] > len(chart.Rows)/2 {
			t.Errorf("%s at position %d of %d; should be in the fast half", fast, pos[fast], len(chart.Rows))
		}
	}
	lastQuarter := len(chart.Rows) * 3 / 4
	for _, slow := range []string{"odoh-target-se.alekberg.net", "odoh-target-noads-se.alekberg.net"} {
		if pos[slow] < lastQuarter {
			t.Errorf("%s at position %d; should anchor the slow end", slow, pos[slow])
		}
	}
}

func TestFigureICMPSilentRowsHaveNoPing(t *testing.T) {
	chart, err := sharedRunner.Figure(Fig1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range chart.Rows {
		if strings.Contains(row.Label, "dohtrial.att.net") && row.HasPing {
			t.Error("dohtrial.att.net shows ping despite being ICMP-silent")
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Chrome", "Firefox", "Edge", "Opera", "Brave", "Cloudflare", "OpenDNS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := sharedRunner.Table2Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Each listed Asia resolver is much faster locally (Seoul).
		if row.RemoteMs < 2*row.LocalMs {
			t.Errorf("%s: remote %.0f not ≫ local %.0f", row.Host, row.RemoteMs, row.LocalMs)
		}
		res, ok := dataset.ResolverByHost(row.Host)
		if !ok || res.Mainstream {
			t.Errorf("%s not a non-mainstream resolver", row.Host)
		}
	}
	// At least three of the paper's five Table 2 rows appear.
	paperRows := map[string]bool{
		"antivirus.bebasid.com": true, "dns.twnic.tw": true,
		"dnslow.me": true, "jp.tiar.app": true, "public.dns.iij.jp": true,
	}
	overlap := 0
	for _, row := range rows {
		if paperRows[row.Host] {
			overlap++
		}
	}
	if overlap < 3 {
		t.Errorf("only %d of the paper's Table 2 resolvers in top five: %+v", overlap, rows)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := sharedRunner.Table3Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.RemoteMs < 2*row.LocalMs {
			t.Errorf("%s: remote %.0f not ≫ local %.0f", row.Host, row.RemoteMs, row.LocalMs)
		}
	}
	// doh.ffmuc.net is the paper's slowest-from-Seoul European resolver
	// (569 ms) and must top the gap ranking.
	if rows[0].Host != "doh.ffmuc.net" {
		t.Errorf("top row = %s, want doh.ffmuc.net", rows[0].Host)
	}
	paperRows := map[string]bool{
		"doh.ffmuc.net": true, "dns0.eu": true, "open.dns0.eu": true,
		"kids.dns0.eu": true, "dns.njal.la": true,
	}
	overlap := 0
	for _, row := range rows {
		if paperRows[row.Host] {
			overlap++
		}
	}
	if overlap < 3 {
		t.Errorf("only %d of the paper's Table 3 resolvers in top five: %+v", overlap, rows)
	}
}

func TestTable2And3Render(t *testing.T) {
	t2, err := sharedRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := sharedRunner.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := t2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Seoul (ms)") {
		t.Error("table 2 header wrong")
	}
	buf.Reset()
	if err := t3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Frankfurt (ms)") {
		t.Error("table 3 header wrong")
	}
}

func TestAvailabilityReport(t *testing.T) {
	av, err := sharedRunner.Availability()
	if err != nil {
		t.Fatal(err)
	}
	rate := av.ErrorRate()
	paper := av.PaperErrorRate()
	if math.Abs(rate-paper) > 0.02 {
		t.Errorf("error rate %.4f too far from paper %.4f", rate, paper)
	}
	// Connection failures dominate (§4).
	if av.ByClass["connect-failure"]*2 < av.Errors {
		t.Errorf("connect failures not dominant: %+v", av.ByClass)
	}
	// Every resolver answered at least once (the paper received responses
	// from most resolvers, and our population has no dead hosts).
	if len(av.Unresponsive) != 0 {
		t.Errorf("unresponsive = %v", av.Unresponsive)
	}
	var buf bytes.Buffer
	if err := av.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"error rate", "connect-failure", "5098281"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("availability render missing %q", want)
		}
	}
}

func TestNoConsistentFailingSubset(t *testing.T) {
	// §4: "We did not identify a consistent pattern of not receiving
	// responses from a certain subset of resolvers each time the
	// measurements ran." Check: across rounds, the set of resolvers with
	// failures varies — no resolver fails in every round while others
	// never fail... concretely, the per-round failing sets differ.
	rs := sharedRunner.MustResults()
	failedIn := make(map[int]map[string]bool)
	for _, rec := range rs.Records() {
		if rec.Kind != "query" || rec.OK {
			continue
		}
		if failedIn[rec.Round] == nil {
			failedIn[rec.Round] = make(map[string]bool)
		}
		failedIn[rec.Round][rec.Resolver] = true
	}
	if len(failedIn) < 10 {
		t.Fatalf("failures seen in only %d rounds", len(failedIn))
	}
	// Compare consecutive rounds' failing sets: they must not be equal
	// every time.
	identical := 0
	pairs := 0
	for r := 0; r+1 < sharedRunner.Rounds; r++ {
		a, b := failedIn[r], failedIn[r+1]
		if a == nil || b == nil {
			continue
		}
		pairs++
		if setsEqual(a, b) {
			identical++
		}
	}
	if pairs > 0 && identical == pairs {
		t.Error("the same resolvers fail every round; paper observed no consistent subset")
	}
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestMedianForHomePooling(t *testing.T) {
	rs := sharedRunner.MustResults()
	pooled, _ := SamplesFor(rs, "home", "dns.google")
	var individual int
	for _, v := range dataset.HomeVantages() {
		individual += len(rs.QuerySamples(v.Name, "dns.google"))
	}
	if len(pooled) != individual {
		t.Errorf("pooled %d != sum of homes %d", len(pooled), individual)
	}
	if m := MedianFor(rs, "home", "dns.google"); math.IsNaN(m) || m <= 0 {
		t.Errorf("home median = %v", m)
	}
}

func TestTargetsConversion(t *testing.T) {
	ts := Targets(dataset.Resolvers())
	if len(ts) != 75 {
		t.Fatalf("targets = %d", len(ts))
	}
	for _, target := range ts {
		if target.Host == "" || target.Endpoint == "" || target.Net.Name != target.Host {
			t.Errorf("bad target %+v", target)
		}
	}
}

func TestHomeVsEC2(t *testing.T) {
	rep, err := sharedRunner.HomeVsEC2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 75 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The access gap is positive (homes pay the last-mile) and modest.
	if rep.TypicalGapMs <= 0 || rep.TypicalGapMs > 120 {
		t.Errorf("typical gap = %.1f ms", rep.TypicalGapMs)
	}
	// Rows are sorted by absolute gap, descending.
	for i := 1; i < len(rep.Rows); i++ {
		if math.Abs(rep.Rows[i].MedianGap()) > math.Abs(rep.Rows[i-1].MedianGap())+1e-9 {
			t.Fatalf("rows not sorted at %d", i)
		}
	}
	// Home IQRs generally exceed Ohio IQRs for NA-near resolvers (the
	// jittery access line) — check the median over rows.
	var homeIQRs, ohioIQRs []float64
	for _, row := range rep.Rows {
		homeIQRs = append(homeIQRs, row.HomeIQR)
		ohioIQRs = append(ohioIQRs, row.OhioIQR)
	}
	if stats.Median(homeIQRs) <= stats.Median(ohioIQRs) {
		t.Errorf("home IQR median %.1f <= ohio %.1f", stats.Median(homeIQRs), stats.Median(ohioIQRs))
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "typical home-minus-Ohio median gap") {
		t.Error("render incomplete")
	}
}

func TestWinnerClaimsStatisticallySignificant(t *testing.T) {
	// Strengthen S1 with the rank-sum test: the §4 winners are faster
	// with statistical significance, not just by point medians.
	rs := sharedRunner.MustResults()
	he, _ := SamplesFor(rs, "home", "ordns.he.net")
	for _, m := range dataset.Mainstream() {
		ms, _ := SamplesFor(rs, "home", m.Host)
		if !stats.FasterThan(he, ms, 0.05) {
			t.Errorf("ordns.he.net not significantly faster than %s from homes", m.Host)
		}
	}
	ali, _ := SamplesFor(rs, dataset.VantageSeoul, "dns.alidns.com")
	for _, host := range []string{"dns.quad9.net", "dns.google", "security.cloudflare-dns.com"} {
		ms, _ := SamplesFor(rs, dataset.VantageSeoul, host)
		if !stats.FasterThan(ali, ms, 0.05) {
			t.Errorf("dns.alidns.com not significantly faster than %s from Seoul", host)
		}
	}
}
