package experiment

import (
	"bytes"
	"strings"
	"testing"

	"encdns/internal/dataset"
	"encdns/internal/netsim"
)

func findRow(t *testing.T, rows []AblationRow, proto netsim.Protocol, reuse bool) AblationRow {
	t.Helper()
	for _, r := range rows {
		if r.Protocol == proto && r.Reuse == reuse {
			return r
		}
	}
	t.Fatalf("missing row %v reuse=%v", proto, reuse)
	return AblationRow{}
}

func TestProtocolAblationOrdering(t *testing.T) {
	rows, err := ProtocolAblation(1, dataset.VantageOhio, "doh.la.ahadns.net", 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	do53 := findRow(t, rows, netsim.ProtoDo53, false)
	dotFresh := findRow(t, rows, netsim.ProtoDoT, false)
	dotReuse := findRow(t, rows, netsim.ProtoDoT, true)
	dohFresh := findRow(t, rows, netsim.ProtoDoH, false)
	dohReuse := findRow(t, rows, netsim.ProtoDoH, true)

	// Böttger et al.: Do53 outperforms DoT/DoH on fresh connections.
	if !(do53.MedianMs < dotFresh.MedianMs && do53.MedianMs < dohFresh.MedianMs) {
		t.Errorf("do53 %.1f not fastest fresh (dot %.1f, doh %.1f)",
			do53.MedianMs, dotFresh.MedianMs, dohFresh.MedianMs)
	}
	// Zhu et al. / Lu et al.: reuse brings encrypted DNS close to Do53.
	if dotReuse.MedianMs > do53.MedianMs*1.5 {
		t.Errorf("dot reuse %.1f far above do53 %.1f", dotReuse.MedianMs, do53.MedianMs)
	}
	if dohReuse.MedianMs > do53.MedianMs*1.5 {
		t.Errorf("doh reuse %.1f far above do53 %.1f", dohReuse.MedianMs, do53.MedianMs)
	}
	// Fresh encrypted connections cost roughly 3x one exchange.
	if ratio := dohFresh.MedianMs / do53.MedianMs; ratio < 2 || ratio > 4.5 {
		t.Errorf("doh fresh / do53 = %.2f, want ~3", ratio)
	}
	// P95 at least the median everywhere.
	for _, r := range rows {
		if r.P95Ms < r.MedianMs {
			t.Errorf("%s: p95 %.1f < median %.1f", r.Label(), r.P95Ms, r.MedianMs)
		}
	}
}

func TestProtocolAblationTLS12Endpoint(t *testing.T) {
	// doh.ffmuc.net negotiates TLS 1.2: fresh DoH costs an extra round
	// trip versus a TLS 1.3 endpoint at a comparable distance.
	rows, err := ProtocolAblation(2, dataset.VantageSeoul, "doh.ffmuc.net", 100)
	if err != nil {
		t.Fatal(err)
	}
	fresh := findRow(t, rows, netsim.ProtoDoH, false)
	reuse := findRow(t, rows, netsim.ProtoDoH, true)
	// 4 RTT fresh vs 1 RTT reuse (plus processing both ways).
	if fresh.MedianMs < 2.5*reuse.MedianMs {
		t.Errorf("TLS1.2 fresh %.1f vs reuse %.1f: expected ≥2.5x", fresh.MedianMs, reuse.MedianMs)
	}
}

func TestProtocolAblationErrors(t *testing.T) {
	if _, err := ProtocolAblation(1, "nowhere", "dns.google", 10); err == nil {
		t.Error("unknown vantage accepted")
	}
	if _, err := ProtocolAblation(1, dataset.VantageOhio, "dns.invalid", 10); err == nil {
		t.Error("unknown resolver accepted")
	}
}

func TestRenderAblation(t *testing.T) {
	rows, err := ProtocolAblation(3, dataset.VantageOhio, "dns.google", 30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderAblation(&buf, dataset.VantageOhio, "dns.google", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"doh fresh", "doh reuse", "do53 fresh", "dot reuse", "Median (ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
