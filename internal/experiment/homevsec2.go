package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"

	"encdns/internal/dataset"
	"encdns/internal/report"
	"encdns/internal/stats"
)

// HomeVsEC2Row compares one resolver between the pooled Chicago home
// devices and the Ohio EC2 instance — §4's "resolver performance can vary
// across measurements collected on virtual instances versus home
// networks", with the accompanying observation that "except for these
// cases, the median resolver response times are almost identical for the
// home network and Ohio EC2 measurements" (modulo the access-network
// overhead).
type HomeVsEC2Row struct {
	Resolver   string
	HomeMedian float64
	HomeIQR    float64
	OhioMedian float64
	OhioIQR    float64
	// Significant reports whether the rank-sum test distinguishes the two
	// distributions at alpha = 0.01 (they almost always differ by the
	// access overhead; the interesting column is the magnitude).
	Significant bool
}

// MedianGap is home minus Ohio.
func (r HomeVsEC2Row) MedianGap() float64 { return r.HomeMedian - r.OhioMedian }

// HomeVsEC2Report holds all rows plus the §4 summary statistics.
type HomeVsEC2Report struct {
	Rows []HomeVsEC2Row
	// TypicalGapMs is the median over resolvers of (home - Ohio) medians:
	// the access-network overhead of the Raspberry Pi deployments.
	TypicalGapMs float64
}

// HomeVsEC2 compares every resolver between the home devices and Ohio.
func (r *Runner) HomeVsEC2() (*HomeVsEC2Report, error) {
	rs, err := r.Results()
	if err != nil {
		return nil, err
	}
	rep := &HomeVsEC2Report{}
	var gaps []float64
	for _, res := range dataset.Resolvers() {
		home, _ := SamplesFor(rs, "home", res.Host)
		ohio, _ := SamplesFor(rs, dataset.VantageOhio, res.Host)
		hb, err1 := stats.Summarize(home)
		ob, err2 := stats.Summarize(ohio)
		if err1 != nil || err2 != nil {
			continue
		}
		_, p := stats.RankSum(home, ohio)
		row := HomeVsEC2Row{
			Resolver:   res.Host,
			HomeMedian: hb.Q2, HomeIQR: hb.IQR(),
			OhioMedian: ob.Q2, OhioIQR: ob.IQR(),
			Significant: !math.IsNaN(p) && p < 0.01,
		}
		rep.Rows = append(rep.Rows, row)
		gaps = append(gaps, row.MedianGap())
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		return math.Abs(rep.Rows[i].MedianGap()) > math.Abs(rep.Rows[j].MedianGap())
	})
	rep.TypicalGapMs = stats.Median(gaps)
	return rep, nil
}

// Render writes the comparison: the typical access gap and the rows that
// deviate most from it.
func (rep *HomeVsEC2Report) Render(w io.Writer) error {
	fmt.Fprintln(w, "Home networks vs Ohio EC2 (§4 variability comparison)")
	fmt.Fprintln(w, "======================================================")
	fmt.Fprintf(w, "resolvers compared: %d; typical home-minus-Ohio median gap: %.1f ms\n",
		len(rep.Rows), rep.TypicalGapMs)
	fmt.Fprintln(w, "(the gap is the Raspberry-Pi access-network overhead; §4 calls the")
	fmt.Fprintln(w, " medians \"almost identical\" once that constant is accounted for)")
	fmt.Fprintln(w)
	t := &report.Table{
		Title: "Largest home-vs-EC2 differences",
		Headers: []string{"Resolver", "Home med (ms)", "Home IQR", "Ohio med (ms)",
			"Ohio IQR", "Gap (ms)"},
	}
	for i, row := range rep.Rows {
		if i >= 12 {
			break
		}
		t.AddRow(row.Resolver,
			fmt.Sprintf("%.1f", row.HomeMedian), fmt.Sprintf("%.1f", row.HomeIQR),
			fmt.Sprintf("%.1f", row.OhioMedian), fmt.Sprintf("%.1f", row.OhioIQR),
			fmt.Sprintf("%+.1f", row.MedianGap()))
	}
	return t.Render(w)
}
