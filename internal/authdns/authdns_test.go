package authdns

import (
	"context"
	"net/netip"
	"testing"

	"encdns/internal/dnswire"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("example.com")
	z.SetSOA("ns1.example.com.", "hostmaster.example.com.", 1, 300)
	z.AddA("example.com.", 300, netip.MustParseAddr("93.184.216.34"))
	z.AddA("www.example.com.", 300, netip.MustParseAddr("93.184.216.35"))
	z.AddA("www.example.com.", 300, netip.MustParseAddr("2606:2800:220:1::1"))
	z.Add(dnswire.Record{
		Name: "alias.example.com.", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.CNAME{Target: "www.example.com."},
	})
	z.Add(dnswire.Record{
		Name: "ext.example.com.", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.CNAME{Target: "other.example.net."},
	})
	z.Delegate("sub.example.com.", map[string]netip.Addr{
		"ns1.sub.example.com.": netip.MustParseAddr("198.51.100.1"),
	})
	return z
}

func query(t *testing.T, z *Zone, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	resp, err := z.ServeDNS(context.Background(), dnswire.NewQuery(1, name, typ))
	if err != nil {
		t.Fatalf("ServeDNS(%s %s): %v", name, typ, err)
	}
	return resp
}

func TestAuthoritativeAnswer(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "www.example.com", dnswire.TypeA)
	if !resp.Header.AA {
		t.Error("AA not set")
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("rcode=%v answers=%d", resp.Header.RCode, len(resp.Answers))
	}
	if a := resp.Answers[0].Data.(*dnswire.A); a.Addr.String() != "93.184.216.35" {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestAAAAAnswer(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "www.example.com", dnswire.TypeAAAA)
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}

func TestCNAMEChaseInZone(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "alias.example.com", dnswire.TypeA)
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %d, want CNAME + A", len(resp.Answers))
	}
	if resp.Answers[0].Type != dnswire.TypeCNAME || resp.Answers[1].Type != dnswire.TypeA {
		t.Errorf("types = %v, %v", resp.Answers[0].Type, resp.Answers[1].Type)
	}
}

func TestCNAMEQueryDirect(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "alias.example.com", dnswire.TypeCNAME)
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnswire.TypeCNAME {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func TestCNAMEOutOfZoneTarget(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "ext.example.com", dnswire.TypeA)
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnswire.TypeCNAME {
		t.Fatalf("answers = %v, want bare CNAME", resp.Answers)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestNXDomain(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "nope.example.com", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", resp.Authority)
	}
}

func TestNODATA(t *testing.T) {
	z := testZone(t)
	// www exists but has no TXT: NODATA, not NXDOMAIN.
	resp := query(t, z, "www.example.com", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v, want NOERROR (NODATA)", resp.Header.RCode)
	}
	if len(resp.Answers) != 0 {
		t.Errorf("answers = %v", resp.Answers)
	}
	if len(resp.Authority) == 0 {
		t.Error("no SOA in authority")
	}
}

func TestEmptyNonTerminal(t *testing.T) {
	z := NewZone("example.org")
	z.SetSOA("ns1.example.org.", "h.example.org.", 1, 300)
	z.AddA("a.b.example.org.", 300, netip.MustParseAddr("192.0.2.1"))
	// "b.example.org" has no records but has a child: NODATA, not NXDOMAIN.
	resp := query(t, z, "b.example.org", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Errorf("rcode = %v, want NOERROR for empty non-terminal", resp.Header.RCode)
	}
}

func TestReferral(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "deep.sub.example.com", dnswire.TypeA)
	if resp.Header.AA {
		t.Error("referral must not be authoritative")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("answers = %v", resp.Answers)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeNS {
		t.Fatalf("authority = %v", resp.Authority)
	}
	if len(resp.Additional) != 1 {
		t.Fatalf("additional = %v, want glue", resp.Additional)
	}
	if a := resp.Additional[0].Data.(*dnswire.A); a.Addr.String() != "198.51.100.1" {
		t.Errorf("glue = %v", a.Addr)
	}
}

func TestOutOfZoneRefused(t *testing.T) {
	z := testZone(t)
	resp := query(t, z, "www.google.com", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestNonINRefused(t *testing.T) {
	z := testZone(t)
	q := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA)
	q.Questions[0].Class = dnswire.ClassCH
	resp, err := z.ServeDNS(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestAddOutsideZonePanics(t *testing.T) {
	z := NewZone("example.com")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	z.AddA("www.google.com.", 300, netip.MustParseAddr("1.2.3.4"))
}

func TestRegistryExchange(t *testing.T) {
	reg := NewRegistry()
	z := testZone(t)
	reg.Register("198.18.0.1:53", z)

	q := dnswire.NewQuery(77, "www.example.com", dnswire.TypeA)
	resp, err := reg.Exchange(context.Background(), q, "198.18.0.1:53")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 77 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
	if _, err := reg.Exchange(context.Background(), q, "198.18.9.9:53"); err == nil {
		t.Error("unknown server answered")
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	h := BuildHierarchy(MeasurementLeaves())
	if len(h.RootServers) != 2 {
		t.Fatalf("root servers = %d", len(h.RootServers))
	}
	if len(h.TLDs) != 1 {
		t.Fatalf("TLDs = %v, want just com", h.TLDs)
	}
	if _, ok := h.TLDs["com."]; !ok {
		t.Fatal("no com TLD zone")
	}
	for _, leaf := range []string{"google.com.", "amazon.com.", "wikipedia.com."} {
		if _, ok := h.Leaves[leaf]; !ok {
			t.Errorf("missing leaf %s", leaf)
		}
	}
}

func TestHierarchyWalk(t *testing.T) {
	// Manually follow the referral chain root → com → google.com.
	h := BuildHierarchy(MeasurementLeaves())
	ctx := context.Background()

	q := dnswire.NewQuery(1, "google.com", dnswire.TypeA)
	resp, err := h.Registry.Exchange(ctx, q, h.RootServers[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 0 || len(resp.Authority) == 0 {
		t.Fatalf("root should refer: %v", resp)
	}
	// Follow glue to the com servers.
	var comServer string
	for _, rr := range resp.Additional {
		if a, ok := rr.Data.(*dnswire.A); ok {
			comServer = a.Addr.String() + ":53"
			break
		}
	}
	if comServer == "" {
		t.Fatal("no glue from root")
	}
	resp, err = h.Registry.Exchange(ctx, q, comServer)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 0 || len(resp.Authority) == 0 {
		t.Fatalf("com should refer: %v", resp)
	}
	var leafServer string
	for _, rr := range resp.Additional {
		if a, ok := rr.Data.(*dnswire.A); ok {
			leafServer = a.Addr.String() + ":53"
			break
		}
	}
	if leafServer == "" {
		t.Fatal("no glue from com")
	}
	resp, err = h.Registry.Exchange(ctx, q, leafServer)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.AA || len(resp.Answers) == 0 {
		t.Fatalf("leaf should answer authoritatively: %v", resp)
	}
}

func TestHierarchyCNAMELeaf(t *testing.T) {
	h := BuildHierarchy(MeasurementLeaves())
	lz := h.Leaves["amazon.com."]
	resp, err := lz.ServeDNS(context.Background(), dnswire.NewQuery(1, "www.amazon.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) < 2 {
		t.Fatalf("answers = %v, want CNAME + A records", resp.Answers)
	}
}
