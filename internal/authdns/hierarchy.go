package authdns

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"encdns/internal/dnswire"
)

// Registry is an in-memory "internet" of authoritative servers: a map from
// server address ("ip:port") to the zone that answers there. It implements
// the resolver's Exchanger interface directly, so a recursive resolver can
// walk the hierarchy without sockets — and each zone can also be served
// over real UDP/TCP listeners for the live integration tests.
type Registry struct {
	mu      sync.RWMutex
	servers map[string]*Zone
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{servers: make(map[string]*Zone)}
}

// Register binds a zone to a server address.
func (r *Registry) Register(addr string, z *Zone) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.servers[addr] = z
}

// Zone returns the zone bound to addr.
func (r *Registry) Zone(addr string) (*Zone, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	z, ok := r.servers[addr]
	return z, ok
}

// Exchange implements the resolver's Exchanger over the in-memory
// registry: queries to unknown servers fail like unreachable hosts.
func (r *Registry) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	z, ok := r.Zone(server)
	if !ok {
		return nil, fmt.Errorf("authdns: no server at %s", server)
	}
	resp, err := z.ServeDNS(ctx, q)
	if err != nil {
		return nil, err
	}
	resp.Header.ID = q.Header.ID
	return resp, nil
}

// Hierarchy is a complete root → TLD → leaf deployment: the zones, the
// registry that serves them, and the root hints a resolver starts from.
type Hierarchy struct {
	Registry *Registry
	Root     *Zone
	TLDs     map[string]*Zone
	Leaves   map[string]*Zone
	// RootServers lists the root name-server addresses (the hints).
	RootServers []string
}

// addrSeq hands out sequential addresses in 198.18.0.0/15 (RFC 2544 bench
// space) for the hierarchy's name servers.
type addrSeq struct{ next uint32 }

func (s *addrSeq) addr() netip.Addr {
	s.next++
	return netip.AddrFrom4([4]byte{198, 18, byte(s.next >> 8), byte(s.next)})
}

// LeafZone describes one leaf zone for BuildHierarchy: its records are
// name → IPv4/IPv6 addresses relative to the zone.
type LeafZone struct {
	Origin string
	// Hosts maps fully qualified names in the zone to their addresses.
	Hosts map[string][]netip.Addr
	// CNAMEs maps alias → target (both fully qualified).
	CNAMEs map[string]string
}

// BuildHierarchy constructs a serving hierarchy for the given leaf zones:
// a root zone delegating each TLD, one TLD zone per distinct TLD
// delegating each leaf, and the leaf zones themselves. Two name servers
// are deployed per zone for retry realism.
func BuildHierarchy(leaves []LeafZone) *Hierarchy {
	h := &Hierarchy{
		Registry: NewRegistry(),
		TLDs:     make(map[string]*Zone),
		Leaves:   make(map[string]*Zone),
	}
	seq := &addrSeq{}

	h.Root = NewZone(".")
	h.Root.SetSOA("a.root-servers.net.", "nstld.verisign-grs.com.", 2023091900, 86400)
	rootNS := map[string]netip.Addr{
		"a.root-servers.net.": seq.addr(),
		"b.root-servers.net.": seq.addr(),
	}
	for ns, addr := range rootNS {
		h.Root.Add(dnswire.Record{
			Name: ".", Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 518400,
			Data: &dnswire.NS{Host: ns},
		})
		h.Root.AddA(ns, 518400, addr)
		serverAddr := addr.String() + ":53"
		h.Registry.Register(serverAddr, h.Root)
		h.RootServers = append(h.RootServers, serverAddr)
	}

	// Group leaves by TLD.
	byTLD := make(map[string][]LeafZone)
	for _, leaf := range leaves {
		origin := dnswire.CanonicalName(leaf.Origin)
		labels := dnswire.SplitLabels(origin)
		if len(labels) == 0 {
			continue
		}
		tld := dnswire.CanonicalName(labels[len(labels)-1])
		byTLD[tld] = append(byTLD[tld], leaf)
	}

	for tld, tldLeaves := range byTLD {
		tz := NewZone(tld)
		tldLabel := dnswire.SplitLabels(tld)[0]
		tz.SetSOA("a.gtld-servers.net.", "nstld."+tld, 2023091900, 900)
		tldNS := map[string]netip.Addr{
			"a." + tldLabel + "-servers.nic." + tld: seq.addr(),
			"b." + tldLabel + "-servers.nic." + tld: seq.addr(),
		}
		h.Root.Delegate(tld, tldNS)
		// Root carries the glue; TLD servers' addresses also registered.
		for ns, addr := range tldNS {
			tz.Add(dnswire.Record{
				Name: tld, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 172800,
				Data: &dnswire.NS{Host: ns},
			})
			tz.AddA(ns, 172800, addr)
			h.Registry.Register(addr.String()+":53", tz)
		}
		h.TLDs[tld] = tz

		for _, leaf := range tldLeaves {
			origin := dnswire.CanonicalName(leaf.Origin)
			lz := NewZone(origin)
			lz.SetSOA("ns1."+origin, "hostmaster."+origin, 2023091900, 300)
			leafNS := map[string]netip.Addr{
				"ns1." + origin: seq.addr(),
				"ns2." + origin: seq.addr(),
			}
			tz.Delegate(origin, leafNS)
			for ns, addr := range leafNS {
				lz.Add(dnswire.Record{
					Name: origin, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 86400,
					Data: &dnswire.NS{Host: ns},
				})
				lz.AddA(ns, 86400, addr)
				h.Registry.Register(addr.String()+":53", lz)
			}
			for host, addrs := range leaf.Hosts {
				for _, a := range addrs {
					lz.AddA(host, 300, a)
				}
			}
			for alias, target := range leaf.CNAMEs {
				lz.Add(dnswire.Record{
					Name: alias, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300,
					Data: &dnswire.CNAME{Target: target},
				})
			}
			h.Leaves[origin] = lz
		}
	}
	return h
}

// MeasurementLeaves returns the leaf zones for the paper's three query
// domains (§3.2: google.com, amazon.com, wikipedia.com) with representative
// addresses.
func MeasurementLeaves() []LeafZone {
	return []LeafZone{
		{
			Origin: "google.com",
			Hosts: map[string][]netip.Addr{
				"google.com.":     {netip.MustParseAddr("142.250.64.78"), netip.MustParseAddr("2607:f8b0:4009:800::200e")},
				"www.google.com.": {netip.MustParseAddr("142.250.64.68")},
			},
		},
		{
			Origin: "amazon.com",
			Hosts: map[string][]netip.Addr{
				"amazon.com.": {netip.MustParseAddr("205.251.242.103"), netip.MustParseAddr("52.94.236.248"), netip.MustParseAddr("54.239.28.85")},
			},
			CNAMEs: map[string]string{
				"www.amazon.com.": "amazon.com.",
			},
		},
		{
			Origin: "wikipedia.com",
			Hosts: map[string][]netip.Addr{
				"wikipedia.com.": {netip.MustParseAddr("208.80.154.232"), netip.MustParseAddr("2620:0:861:ed1a::9")},
			},
			CNAMEs: map[string]string{
				"www.wikipedia.com.": "wikipedia.com.",
			},
		},
	}
}
