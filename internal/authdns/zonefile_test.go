package authdns

import (
	"context"
	"strings"
	"testing"

	"encdns/internal/dnswire"
)

const sampleZone = `
$ORIGIN example.com.
$TTL 300
@   IN SOA ns1 hostmaster (
        2024050901 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@       IN NS  ns1
@       IN NS  ns2.example.net.
ns1     IN A   192.0.2.1
        IN AAAA 2001:db8::1
www     600 IN A 192.0.2.80
alias   IN CNAME www
@       IN MX 10 mail
mail    IN A 192.0.2.25
txt     IN TXT "hello world" "second; string"
_dns._tcp IN SRV 0 5 853 dot
dot     IN A 192.0.2.53
@       IN CAA 0 issue "letsencrypt.org"
`

func TestParseZoneFull(t *testing.T) {
	z, err := ParseZone("example.com", strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	q := func(name string, typ dnswire.Type) *dnswire.Message {
		t.Helper()
		resp, err := z.ServeDNS(context.Background(), dnswire.NewQuery(1, name, typ))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// SOA with multi-line parens.
	resp := q("example.com", dnswire.TypeSOA)
	if len(resp.Answers) != 1 {
		t.Fatalf("SOA answers = %v", resp.Answers)
	}
	soa := resp.Answers[0].Data.(*dnswire.SOA)
	if soa.Serial != 2024050901 || soa.Minimum != 300 || soa.MName != "ns1.example.com." {
		t.Errorf("soa = %+v", soa)
	}
	// Owner repetition: AAAA under ns1 (blank owner on next line).
	resp = q("ns1.example.com", dnswire.TypeAAAA)
	if len(resp.Answers) != 1 {
		t.Fatalf("ns1 AAAA = %v", resp.Answers)
	}
	// Explicit TTL overrides $TTL.
	resp = q("www.example.com", dnswire.TypeA)
	if len(resp.Answers) != 1 || resp.Answers[0].TTL != 600 {
		t.Errorf("www = %v", resp.Answers)
	}
	// Relative and absolute NS targets.
	resp = q("example.com", dnswire.TypeNS)
	if len(resp.Answers) != 2 {
		t.Fatalf("NS = %v", resp.Answers)
	}
	hosts := map[string]bool{}
	for _, rr := range resp.Answers {
		hosts[rr.Data.(*dnswire.NS).Host] = true
	}
	if !hosts["ns1.example.com."] || !hosts["ns2.example.net."] {
		t.Errorf("NS hosts = %v", hosts)
	}
	// CNAME chase.
	resp = q("alias.example.com", dnswire.TypeA)
	if len(resp.Answers) != 2 {
		t.Errorf("alias chain = %v", resp.Answers)
	}
	// MX with relative host.
	resp = q("example.com", dnswire.TypeMX)
	mx := resp.Answers[0].Data.(*dnswire.MX)
	if mx.Preference != 10 || mx.Host != "mail.example.com." {
		t.Errorf("mx = %+v", mx)
	}
	// TXT with quoted strings, semicolon inside quotes preserved.
	resp = q("txt.example.com", dnswire.TypeTXT)
	txt := resp.Answers[0].Data.(*dnswire.TXT)
	if len(txt.Strings) != 2 || txt.Strings[0] != "hello world" || txt.Strings[1] != "second; string" {
		t.Errorf("txt = %+v", txt.Strings)
	}
	// SRV.
	resp = q("_dns._tcp.example.com", dnswire.TypeSRV)
	srv := resp.Answers[0].Data.(*dnswire.SRV)
	if srv.Port != 853 || srv.Target != "dot.example.com." {
		t.Errorf("srv = %+v", srv)
	}
	// CAA.
	resp = q("example.com", dnswire.TypeCAA)
	caa := resp.Answers[0].Data.(*dnswire.CAA)
	if caa.Tag != "issue" || caa.Value != "letsencrypt.org" {
		t.Errorf("caa = %+v", caa)
	}
}

func TestParseZoneRoundTripsThroughWire(t *testing.T) {
	// Every parsed record must survive pack/unpack.
	z, err := ParseZone("example.com", strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := z.ServeDNS(context.Background(), dnswire.NewQuery(1, "example.com", dnswire.TypeSOA))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnswire.Unpack(wire); err != nil {
		t.Fatal(err)
	}
}

func TestParseZoneOriginDirective(t *testing.T) {
	zone := `
$ORIGIN sub.example.com.
www IN A 192.0.2.1
`
	z, err := ParseZone("example.com", strings.NewReader(zone))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := z.ServeDNS(context.Background(), dnswire.NewQuery(1, "www.sub.example.com", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("www.sub = %v", resp.Answers)
	}
}

func TestParseZoneErrors(t *testing.T) {
	cases := []struct {
		name string
		zone string
	}{
		{"unknown type", "@ IN WAT 1.2.3.4\n"},
		{"bad A", "@ IN A not-an-ip\n"},
		{"A with v6", "@ IN A 2001:db8::1\n"},
		{"AAAA with v4", "@ IN AAAA 1.2.3.4\n"},
		{"missing type", "www 300 IN\n"},
		{"bad ttl directive", "$TTL lots\n"},
		{"bad origin arity", "$ORIGIN a b\n"},
		{"include unsupported", "$INCLUDE other.zone\n"},
		{"unbalanced parens", "@ IN SOA ns1 h ( 1 2 3 4 5\n"},
		{"close without open", "@ IN A 1.2.3.4 )\n"},
		{"bad mx pref", "@ IN MX lots mail\n"},
		{"srv arity", "@ IN SRV 1 2 853\n"},
		{"soa arity", "@ IN SOA ns1 h 1 2 3\n"},
		{"bad caa flags", "@ IN CAA x issue y\n"},
	}
	for _, c := range cases {
		if _, err := ParseZone("example.com", strings.NewReader(c.zone)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseZoneCommentsAndBlanks(t *testing.T) {
	zone := `
; a full-line comment

@ IN A 192.0.2.1 ; trailing comment
`
	z, err := ParseZone("example.com", strings.NewReader(zone))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := z.ServeDNS(context.Background(), dnswire.NewQuery(1, "example.com", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestTokenizeQuotes(t *testing.T) {
	got := tokenize(`a "b c" "" d`)
	want := []string{"a", "b c", "", "d"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %q", got)
		}
	}
}
