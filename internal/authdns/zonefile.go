package authdns

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"encdns/internal/dnswire"
)

// ParseZone reads a zone in RFC 1035 presentation format (the master-file
// syntax served by real authoritative servers) and returns a Zone rooted
// at origin. Supported: $ORIGIN and $TTL directives, '@' for the origin,
// relative names, ';' comments, parenthesised continuations (SOA), and
// the record types A, AAAA, NS, CNAME, PTR, MX, TXT, SRV, CAA, SOA.
func ParseZone(origin string, r io.Reader) (*Zone, error) {
	z := NewZone(origin)
	p := &zoneParser{
		zone:    z,
		origin:  dnswire.CanonicalName(origin),
		ttl:     3600,
		lastOwn: dnswire.CanonicalName(origin),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	var pending strings.Builder
	depth := 0
	firstLineOmitsOwner := false
	for sc.Scan() {
		lineno++
		line := stripComment(sc.Text())
		if pending.Len() == 0 {
			// Owner omission is decided by the entry's FIRST line; later
			// continuation lines are indented by convention.
			firstLineOmitsOwner = len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
		}
		// Parenthesised records span lines until the parens balance.
		depth += strings.Count(line, "(") - strings.Count(line, ")")
		if depth < 0 {
			return nil, fmt.Errorf("authdns: line %d: unbalanced parentheses", lineno)
		}
		pending.WriteString(" " + line)
		if depth > 0 {
			continue
		}
		entry := strings.NewReplacer("(", " ", ")", " ").Replace(pending.String())
		pending.Reset()
		if err := p.entry(entry, firstLineOmitsOwner); err != nil {
			return nil, fmt.Errorf("authdns: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("authdns: reading zone: %w", err)
	}
	if depth != 0 {
		return nil, fmt.Errorf("authdns: unterminated parentheses at end of zone")
	}
	return z, nil
}

func stripComment(line string) string {
	// Semicolons inside quoted strings (TXT) do not start comments.
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

type zoneParser struct {
	zone    *Zone
	origin  string
	ttl     uint32
	lastOwn string
}

// entry processes one logical (continuation-joined) zone entry.
func (p *zoneParser) entry(raw string, ownerOmitted bool) error {
	fields := tokenize(raw)
	if len(fields) == 0 {
		return nil
	}
	switch strings.ToUpper(fields[0]) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return fmt.Errorf("$ORIGIN wants one argument")
		}
		p.origin = dnswire.CanonicalName(fields[1])
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return fmt.Errorf("$TTL wants one argument")
		}
		ttl, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad $TTL %q", fields[1])
		}
		p.ttl = uint32(ttl)
		return nil
	case "$INCLUDE":
		return fmt.Errorf("$INCLUDE is not supported")
	}

	// Owner name: omitted (leading whitespace) repeats the previous owner.
	owner := p.lastOwn
	if !ownerOmitted {
		owner = p.absName(fields[0])
		fields = fields[1:]
	}
	p.lastOwn = owner

	// Optional TTL and class, in either order (RFC 1035 §5.1).
	ttl := p.ttl
	class := dnswire.ClassIN
	for len(fields) > 0 {
		f := strings.ToUpper(fields[0])
		if n, err := strconv.ParseUint(f, 10, 32); err == nil {
			ttl = uint32(n)
			fields = fields[1:]
			continue
		}
		if f == "IN" || f == "CH" || f == "HS" {
			fields = fields[1:]
			continue
		}
		break
	}
	if len(fields) == 0 {
		return fmt.Errorf("missing record type for %s", owner)
	}
	typ, ok := dnswire.ParseType(strings.ToUpper(fields[0]))
	if !ok {
		return fmt.Errorf("unknown record type %q", fields[0])
	}
	rdata, err := p.parseRData(typ, fields[1:])
	if err != nil {
		return fmt.Errorf("%s %s: %w", owner, typ, err)
	}
	p.zone.Add(dnswire.Record{Name: owner, Type: typ, Class: class, TTL: ttl, Data: rdata})
	return nil
}

// absName resolves a presentation name against the current origin.
func (p *zoneParser) absName(name string) string {
	if name == "@" {
		return p.origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	if p.origin == "." {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name + "." + p.origin)
}

func (p *zoneParser) parseRData(t dnswire.Type, f []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(f) != n {
			return fmt.Errorf("want %d field(s), have %d", n, len(f))
		}
		return nil
	}
	switch t {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(f[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 %q", f[0])
		}
		return &dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(f[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 %q", f[0])
		}
		return &dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.NS{Host: p.absName(f[0])}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.CNAME{Target: p.absName(f[0])}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return &dnswire.PTR{Target: p.absName(f[0])}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(f[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", f[0])
		}
		return &dnswire.MX{Preference: uint16(pref), Host: p.absName(f[1])}, nil
	case dnswire.TypeTXT:
		if len(f) == 0 {
			return nil, fmt.Errorf("TXT wants at least one string")
		}
		return &dnswire.TXT{Strings: f}, nil
	case dnswire.TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		var nums [3]uint16
		for i := 0; i < 3; i++ {
			n, err := strconv.ParseUint(f[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bad SRV field %q", f[i])
			}
			nums[i] = uint16(n)
		}
		return &dnswire.SRV{Priority: nums[0], Weight: nums[1], Port: nums[2], Target: p.absName(f[3])}, nil
	case dnswire.TypeCAA:
		if err := need(3); err != nil {
			return nil, err
		}
		flags, err := strconv.ParseUint(f[0], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad CAA flags %q", f[0])
		}
		return &dnswire.CAA{Flags: uint8(flags), Tag: f[1], Value: f[2]}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			n, err := strconv.ParseUint(f[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA number %q", f[2+i])
			}
			nums[i] = uint32(n)
		}
		return &dnswire.SOA{
			MName: p.absName(f[0]), RName: p.absName(f[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("type %s not supported in zone files", t)
	}
}

// tokenize splits an entry into fields, honouring double-quoted strings
// (for TXT payloads containing whitespace).
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			if inQuote {
				// Closing quote: emit even when empty.
				out = append(out, cur.String())
				cur.Reset()
			}
			inQuote = !inQuote
		case !inQuote && (c == ' ' || c == '\t'):
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}
