// Package authdns implements authoritative DNS serving: a zone data model
// with delegations and glue, RFC 1035 lookup semantics (answers, referrals,
// CNAMEs, NXDOMAIN with SOA), and a Hierarchy builder that stands up the
// root → TLD → leaf name-server chain the paper's recursive resolvers walk
// when a query misses their cache.
package authdns

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"encdns/internal/dnswire"
)

// rrKey identifies an RRset within a zone.
type rrKey struct {
	name string
	typ  dnswire.Type
}

// Zone is one authoritative zone: an origin, its records, and the child
// delegations below it. Safe for concurrent reads after construction.
type Zone struct {
	origin string

	mu      sync.RWMutex
	records map[rrKey][]dnswire.Record
	// cuts is the set of delegated child zone names (owners of NS RRsets
	// below the origin), used to find the closest enclosing cut.
	cuts map[string]bool
}

// NewZone creates an empty zone rooted at origin. Every zone must be given
// a SOA record (SetSOA) before serving.
func NewZone(origin string) *Zone {
	return &Zone{
		origin:  dnswire.CanonicalName(origin),
		records: make(map[rrKey][]dnswire.Record),
		cuts:    make(map[string]bool),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() string { return z.origin }

// SetSOA installs the zone's SOA record with sensible timer defaults.
func (z *Zone) SetSOA(mname, rname string, serial uint32, negativeTTL uint32) {
	z.Add(dnswire.Record{
		Name: z.origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 3600,
		Data: &dnswire.SOA{
			MName: mname, RName: rname, Serial: serial,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: negativeTTL,
		},
	})
}

// Add inserts a record. Records outside the zone are rejected with a panic
// because they indicate a programming error in hierarchy construction.
func (z *Zone) Add(rr dnswire.Record) {
	rr.Name = dnswire.CanonicalName(rr.Name)
	if !dnswire.IsSubdomain(rr.Name, z.origin) {
		panic(fmt.Sprintf("authdns: record %s outside zone %s", rr.Name, z.origin))
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrKey{name: rr.Name, typ: rr.Type}
	z.records[k] = append(z.records[k], rr)
	if rr.Type == dnswire.TypeNS && rr.Name != z.origin {
		z.cuts[rr.Name] = true
	}
}

// AddA is a convenience for A/AAAA records.
func (z *Zone) AddA(name string, ttl uint32, addr netip.Addr) {
	rr := dnswire.Record{
		Name: name, Class: dnswire.ClassIN, TTL: ttl,
	}
	if addr.Is4() {
		rr.Type = dnswire.TypeA
		rr.Data = &dnswire.A{Addr: addr}
	} else {
		rr.Type = dnswire.TypeAAAA
		rr.Data = &dnswire.AAAA{Addr: addr}
	}
	z.Add(rr)
}

// Delegate adds an NS cut for child served by the named servers, with glue
// A records when addresses are supplied.
func (z *Zone) Delegate(child string, servers map[string]netip.Addr) {
	child = dnswire.CanonicalName(child)
	names := make([]string, 0, len(servers))
	for ns := range servers {
		names = append(names, ns)
	}
	sort.Strings(names) // deterministic referral ordering
	for _, ns := range names {
		z.Add(dnswire.Record{
			Name: child, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 86400,
			Data: &dnswire.NS{Host: ns},
		})
		if addr := servers[ns]; addr.IsValid() && dnswire.IsSubdomain(ns, z.origin) {
			z.AddA(ns, 86400, addr) // glue
		}
	}
}

// lookup returns the RRset for (name, type) without lock management.
func (z *Zone) get(name string, t dnswire.Type) []dnswire.Record {
	return z.records[rrKey{name: dnswire.CanonicalName(name), typ: t}]
}

// nameExists reports whether any RRset exists at name (for NODATA vs
// NXDOMAIN discrimination).
func (z *Zone) nameExists(name string) bool {
	name = dnswire.CanonicalName(name)
	for k := range z.records {
		if k.name == name {
			return true
		}
	}
	// An "empty non-terminal": the name has no records but something
	// exists below it, so it is not NXDOMAIN (RFC 8020 semantics).
	suffix := "." + name
	if name == "." {
		suffix = "."
	}
	for k := range z.records {
		if strings.HasSuffix(k.name, suffix) && k.name != name {
			return true
		}
	}
	return false
}

// cutFor returns the closest enclosing delegation for qname, or "" when
// qname is inside this zone's authoritative data.
func (z *Zone) cutFor(qname string) string {
	qname = dnswire.CanonicalName(qname)
	// Walk from qname upward toward (but excluding) the origin.
	for n := qname; n != z.origin && n != "."; n = dnswire.ParentName(n) {
		if z.cuts[n] {
			return n
		}
	}
	return ""
}

// ServeDNS implements dns53.Handler with authoritative semantics:
//
//   - name at/under a delegation cut → referral (NS in authority + glue)
//   - exact RRset → authoritative answer
//   - CNAME at the name → CNAME answer, chased within the zone
//   - name exists without the type → NODATA (empty answer + SOA)
//   - otherwise → NXDOMAIN + SOA
func (z *Zone) ServeDNS(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	resp := q.Reply()
	q0 := q.Question0()
	qname := dnswire.CanonicalName(q0.Name)
	if q0.Class != dnswire.ClassIN && q0.Class != dnswire.ClassANY {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp, nil
	}
	if !dnswire.IsSubdomain(qname, z.origin) {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp, nil
	}

	z.mu.RLock()
	defer z.mu.RUnlock()

	// Referral?
	if cut := z.cutFor(qname); cut != "" {
		resp.Header.AA = false
		nsSet := z.get(cut, dnswire.TypeNS)
		resp.Authority = append(resp.Authority, nsSet...)
		for _, rr := range nsSet {
			if ns, ok := rr.Data.(*dnswire.NS); ok {
				resp.Additional = append(resp.Additional, z.get(ns.Host, dnswire.TypeA)...)
				resp.Additional = append(resp.Additional, z.get(ns.Host, dnswire.TypeAAAA)...)
			}
		}
		return resp, nil
	}

	resp.Header.AA = true
	// Chase CNAMEs inside the zone, bounded against loops.
	name := qname
	for hops := 0; hops < 8; hops++ {
		if rrs := z.get(name, q0.Type); len(rrs) > 0 {
			resp.Answers = append(resp.Answers, rrs...)
			return resp, nil
		}
		cn := z.get(name, dnswire.TypeCNAME)
		if len(cn) == 0 || q0.Type == dnswire.TypeCNAME {
			break
		}
		resp.Answers = append(resp.Answers, cn...)
		target := cn[0].Data.(*dnswire.CNAME).Target
		if !dnswire.IsSubdomain(target, z.origin) {
			// Out-of-zone target: the resolver must chase it.
			return resp, nil
		}
		name = target
	}

	// NODATA or NXDOMAIN, both with the SOA for negative caching.
	if soa := z.get(z.origin, dnswire.TypeSOA); len(soa) > 0 {
		resp.Authority = append(resp.Authority, soa...)
	}
	if !z.nameExists(name) && len(resp.Answers) == 0 {
		resp.Header.RCode = dnswire.RCodeNXDomain
	}
	return resp, nil
}
