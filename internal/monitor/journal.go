// Package monitor is the continuous-availability watchtower over the
// measurement engine: a per-target health state machine with hysteresis,
// rolling-window availability SLOs evaluated as multi-window multi-burn-
// rate alerts (the Google SRE workbook shape), and a bounded structured
// event journal. It consumes probe outcomes (from the campaign's
// observer hook or the transport outcome hook), keeps everything in
// windowed obs instruments, and renders itself as the /debug/watch
// surface via obs.WatchSource.
//
// The paper's headline result is *continuous* measurement — availability
// is a property of a time window, not of a cumulative aggregate. This
// package is the operator-facing half of that observation: the rolling
// windows that make a ten-minute outage visible, and the burn-rate
// alerts a production resolver fleet would page on.
package monitor

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types recorded in the journal.
const (
	// EventState is a target health-state transition.
	EventState = "state-transition"
	// EventAlertFire marks a burn-rate alert starting to fire.
	EventAlertFire = "alert-fire"
	// EventAlertResolve marks a firing alert clearing.
	EventAlertResolve = "alert-resolve"
	// EventConfig records tracker configuration at construction.
	EventConfig = "config"
)

// Event is one journal entry. Fields are omitted when not meaningful for
// the event type.
type Event struct {
	// Time is the tracker clock when the event happened (virtual under
	// netsim).
	Time time.Time `json:"ts"`
	// Seq is a monotonic sequence number, surviving ring eviction so
	// consumers can detect gaps.
	Seq uint64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Target is the resolver the event concerns (empty for config).
	Target string `json:"target,omitempty"`
	// From and To are state names for transitions.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Alert names the burn window pair for alert events.
	Alert string `json:"alert,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded in-memory ring of events. When full, the oldest
// events are evicted; Seq numbers expose the loss. Safe for concurrent
// use.
type Journal struct {
	mu    sync.Mutex
	ring  []Event
	start int // index of the oldest event
	n     int // live events
	seq   uint64
}

// NewJournal builds a journal holding at most capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{ring: make([]Event, capacity)}
}

// Append stamps e with the next sequence number and records it,
// evicting the oldest event when full.
func (j *Journal) Append(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if j.n < len(j.ring) {
		j.ring[(j.start+j.n)%len(j.ring)] = e
		j.n++
		return
	}
	j.ring[j.start] = e
	j.start = (j.start + 1) % len(j.ring)
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.ring[(j.start+i)%len(j.ring)]
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// WriteJSONL writes the retained events as JSON Lines, oldest first —
// the export format behind /debug/watch/events.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline JSONL needs
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
