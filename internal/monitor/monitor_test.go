package monitor

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"encdns/internal/netsim"
)

// testConfig is scaled to virtual time: 10s buckets, one fast burn pair
// over 10s/30s, hysteresis at 3.
func testConfig(clk netsim.Clock) Config {
	return Config{
		Now:          netsim.NowFunc(clk),
		Interval:     10 * time.Second,
		SeriesPoints: 12,
		Objective:    0.9,
		Burn: []BurnWindow{
			{Name: "fast", Short: 10 * time.Second, Long: 30 * time.Second, Factor: 2},
		},
		DownAfter:      3,
		HealthyAfter:   3,
		DegradedRatio:  0.25,
		DegradedWindow: 30 * time.Second,
		MinSamples:     4,
	}
}

func TestHysteresisDownAndRecovery(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	tr := New(testConfig(clk))

	// Healthy baseline.
	for i := 0; i < 6; i++ {
		tr.ObserveProbe("doh:dns.example", true, 20*time.Millisecond, "")
		clk.Advance(time.Second)
	}
	if st, ok := tr.State("doh:dns.example"); !ok || st != StateHealthy {
		t.Fatalf("after successes: state=%v ok=%v, want healthy", st, ok)
	}

	// Two failures are not enough to go down...
	tr.ObserveProbe("doh:dns.example", false, 0, "timeout")
	tr.ObserveProbe("doh:dns.example", false, 0, "timeout")
	if st, _ := tr.State("doh:dns.example"); st == StateDown {
		t.Fatalf("went down after 2 consecutive failures, DownAfter=3")
	}
	// ...the third is.
	tr.ObserveProbe("doh:dns.example", false, 0, "timeout")
	if st, _ := tr.State("doh:dns.example"); st != StateDown {
		t.Fatalf("state=%v after 3 consecutive failures, want down", st)
	}

	// Two successes do not recover (HealthyAfter=3)...
	tr.ObserveProbe("doh:dns.example", true, 20*time.Millisecond, "")
	tr.ObserveProbe("doh:dns.example", true, 20*time.Millisecond, "")
	if st, _ := tr.State("doh:dns.example"); st != StateDown {
		t.Fatalf("state=%v after 2 successes, want still down", st)
	}
	// ...and even a third doesn't while the windowed failure ratio is
	// still inside the hysteresis band.
	tr.ObserveProbe("doh:dns.example", true, 20*time.Millisecond, "")
	if st, _ := tr.State("doh:dns.example"); st != StateHealthy {
		// The ratio over the degraded window is 3/9 = 0.33 >= 0.125,
		// so recovery must wait for the failures to age out.
	} else {
		t.Fatalf("recovered with windowed failure ratio still above band")
	}

	// Age the failures out of the 30s degraded window, keep succeeding.
	for i := 0; i < 4; i++ {
		clk.Advance(15 * time.Second)
		tr.ObserveProbe("doh:dns.example", true, 20*time.Millisecond, "")
	}
	if st, _ := tr.State("doh:dns.example"); st != StateHealthy {
		t.Fatalf("state=%v after sustained recovery, want healthy", st)
	}

	// The journal saw both transitions.
	var sawDown, sawUp bool
	for _, e := range tr.Journal().Events() {
		if e.Type == EventState && e.To == "down" {
			sawDown = true
		}
		if e.Type == EventState && e.From == "down" && e.To == "healthy" {
			sawUp = true
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("journal transitions: down=%v up=%v, want both", sawDown, sawUp)
	}
}

func TestDegradedOnFailureRatio(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	tr := New(testConfig(clk))

	// Alternate ok/ok/fail: ratio 1/3 >= 0.25, never 3 consecutive fails.
	for i := 0; i < 9; i++ {
		ok := i%3 != 2
		tr.ObserveProbe("dot:dns.example", ok, 15*time.Millisecond, "connect-failure")
		clk.Advance(time.Second)
	}
	st, _ := tr.State("dot:dns.example")
	if st != StateDegraded {
		t.Fatalf("state=%v with 1/3 failure ratio, want degraded", st)
	}
}

func TestBurnAlertFiresAndResolves(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	tr := New(testConfig(clk))
	const target = "doq:dns.example"

	// One healthy minute: 6 probes, all ok.
	for i := 0; i < 6; i++ {
		tr.ObserveProbe(target, true, 10*time.Millisecond, "")
		clk.Advance(10 * time.Second)
	}
	if tr.AlertFiring(target, "fast") {
		t.Fatalf("fast alert firing on all-success history")
	}

	// Hard outage: every probe fails. Budget is 0.1, factor 2 — the
	// short window (10s) burns at 10 immediately; the long window (30s)
	// crosses 2 once failures dominate it.
	var fired bool
	for i := 0; i < 4; i++ {
		tr.ObserveProbe(target, false, 0, "timeout")
		if tr.AlertFiring(target, "fast") {
			fired = true
			break
		}
		clk.Advance(10 * time.Second)
	}
	if !fired {
		t.Fatalf("fast alert never fired during a hard outage")
	}

	// Recovery: successes push the short-window burn to 0; the alert
	// must auto-resolve even while the long window still remembers the
	// outage.
	for i := 0; i < 6 && tr.AlertFiring(target, "fast"); i++ {
		clk.Advance(10 * time.Second)
		tr.ObserveProbe(target, true, 10*time.Millisecond, "")
	}
	if tr.AlertFiring(target, "fast") {
		t.Fatalf("fast alert still firing after sustained recovery")
	}

	var sawFire, sawResolve bool
	for _, e := range tr.Journal().Events() {
		switch e.Type {
		case EventAlertFire:
			sawFire = true
		case EventAlertResolve:
			sawResolve = true
		}
	}
	if !sawFire || !sawResolve {
		t.Fatalf("journal alerts: fire=%v resolve=%v, want both", sawFire, sawResolve)
	}
}

func TestWatchReportShape(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	tr := New(testConfig(clk))

	for i := 0; i < 12; i++ {
		tr.ObserveProbe("b-resolver", true, 25*time.Millisecond, "")
		tr.ObserveProbe("a-resolver", i%4 != 0, 40*time.Millisecond, "tls-handshake-failure")
		clk.Advance(10 * time.Second)
	}

	rep := tr.WatchReport()
	if len(rep.Targets) != 2 {
		t.Fatalf("targets=%d, want 2", len(rep.Targets))
	}
	if rep.Targets[0].Target != "a-resolver" || rep.Targets[1].Target != "b-resolver" {
		t.Fatalf("targets not sorted: %q, %q", rep.Targets[0].Target, rep.Targets[1].Target)
	}
	a, b := rep.Targets[0], rep.Targets[1]
	if b.Availability != 1 || b.Failures != 0 {
		t.Fatalf("b-resolver availability=%v failures=%d, want 1, 0", b.Availability, b.Failures)
	}
	if a.Failures == 0 || a.Availability >= 1 {
		t.Fatalf("a-resolver availability=%v failures=%d, want lossy", a.Availability, a.Failures)
	}
	if a.Errors["tls-handshake-failure"] == 0 {
		t.Fatalf("a-resolver error breakdown missing tls-handshake-failure: %v", a.Errors)
	}
	if b.P50Ms < 20 || b.P50Ms > 35 {
		t.Fatalf("b-resolver p50=%vms, want ~25ms", b.P50Ms)
	}
	if len(b.Series) == 0 {
		t.Fatalf("b-resolver has no timeseries")
	}
	if len(a.Alerts) != 1 || a.Alerts[0].Window != "fast" {
		t.Fatalf("a-resolver alerts=%v, want one fast window", a.Alerts)
	}

	// The report must be JSON-encodable (no NaN leaks from empty
	// windows) even for a target that has never succeeded.
	tr.ObserveProbe("c-never-up", false, 0, "timeout")
	if _, err := json.Marshal(tr.WatchReport()); err != nil {
		t.Fatalf("WatchReport not JSON-encodable: %v", err)
	}
}

func TestJournalBoundedAndJSONL(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Time: netsim.CampaignEpoch, Type: EventState, Target: "x"})
	}
	if j.Len() != 4 {
		t.Fatalf("journal len=%d, want capacity 4", j.Len())
	}
	evs := j.Events()
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("journal kept seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("JSONL lines=%d, want 4", lines)
	}
}

func TestConfigEventJournaled(t *testing.T) {
	tr := New(Config{Now: netsim.NowFunc(netsim.NewVirtualClock(netsim.CampaignEpoch))})
	evs := tr.Journal().Events()
	if len(evs) != 1 || evs[0].Type != EventConfig {
		t.Fatalf("journal=%v, want one config event", evs)
	}
	if !strings.Contains(evs[0].Detail, "objective=0.99") {
		t.Fatalf("config detail %q missing defaults", evs[0].Detail)
	}
}

func TestLongWindowUsesCoarseRing(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	// Production-shaped burn windows: long window 3d forces a coarse ring.
	tr := New(Config{
		Now:      netsim.NowFunc(clk),
		Interval: 10 * time.Second,
	})
	if tr.coarseInterval <= tr.cfg.Interval {
		t.Fatalf("coarse interval %v not coarser than fine %v", tr.coarseInterval, tr.cfg.Interval)
	}
	// Spread failures over hours: invisible to the fine ring's span but
	// present in the slow pair's long window.
	for i := 0; i < 12; i++ {
		tr.ObserveProbe("t", false, 0, "timeout")
		tr.ObserveProbe("t", true, 10*time.Millisecond, "")
		clk.Advance(time.Hour)
	}
	tr.mu.Lock()
	tg := tr.targets["t"]
	fails, total := tr.rates(tg, 3*24*time.Hour)
	tr.mu.Unlock()
	if total < 20 || fails < 10 {
		t.Fatalf("coarse rates over 3d: %d/%d, want ~12/24", fails, total)
	}
}
