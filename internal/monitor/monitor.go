package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"encdns/internal/obs"
)

// State is a target's health as the watchtower sees it.
type State int

// Health states. Transitions have hysteresis: a target goes Down on
// consecutive failures, but must string together consecutive successes
// (and clear the degraded ratio band) to be Healthy again, so a resolver
// flapping at 50% doesn't flap the state with it.
const (
	StateHealthy State = iota
	StateDegraded
	StateDown
)

// String names the state as the journal and /debug/watch spell it.
func (s State) String() string {
	switch s {
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	}
	return "healthy"
}

// Config parameterises a Tracker. The zero value is usable: it yields
// wall-clock time, 10-second buckets, a 99% availability objective, the
// SRE-workbook burn windows, and production-shaped hysteresis.
type Config struct {
	// Now is the clock; nil uses time.Now. Hand it netsim.NowFunc(clock)
	// and the whole watchtower runs in virtual time.
	Now func() time.Time
	// Interval is the windowed-bucket width (default 10s).
	Interval time.Duration
	// SeriesPoints is how many intervals the dashboard timeseries keeps
	// (default 60: ten minutes at the default interval). It also sets
	// the window the top-level availability/quantile readings cover.
	SeriesPoints int
	// Objective is the availability SLO in (0,1) (default 0.99); the
	// error budget for burn rates is 1-Objective.
	Objective float64
	// Burn is the multi-window multi-burn-rate alert configuration
	// (default DefaultBurnWindows: fast 5m/1h ×14.4, slow 6h/3d ×1).
	Burn []BurnWindow
	// DownAfter is the consecutive-failure count that forces Down
	// (default 3). HealthyAfter is the consecutive-success count
	// required to leave Degraded/Down (default 3).
	DownAfter    int
	HealthyAfter int
	// DegradedRatio is the failure fraction over DegradedWindow that
	// demotes Healthy to Degraded (default 0.1 over 1m); recovery
	// additionally requires the ratio back under DegradedRatio/2.
	DegradedRatio  float64
	DegradedWindow time.Duration
	// MinSamples gates ratio judgements so one early failure cannot
	// mark a target degraded (default 5).
	MinSamples int
	// JournalCap bounds the event journal (default 1024 events).
	JournalCap int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 10 * time.Second
	}
	if out.SeriesPoints <= 0 {
		out.SeriesPoints = 60
	}
	if out.Objective <= 0 || out.Objective >= 1 {
		out.Objective = 0.99
	}
	if len(out.Burn) == 0 {
		out.Burn = DefaultBurnWindows()
	}
	if out.DownAfter <= 0 {
		out.DownAfter = 3
	}
	if out.HealthyAfter <= 0 {
		out.HealthyAfter = 3
	}
	if out.DegradedRatio <= 0 {
		out.DegradedRatio = 0.1
	}
	if out.DegradedWindow <= 0 {
		out.DegradedWindow = time.Minute
	}
	if out.MinSamples <= 0 {
		out.MinSamples = 5
	}
	if out.JournalCap <= 0 {
		out.JournalCap = 1024
	}
	return out
}

// Tracker-level instruments, shared process-wide like the campaign's.
var (
	monTransitions = obs.Default().Counter("monitor_state_transitions_total",
		"Target health-state transitions recorded by monitor trackers.")
	monAlertsFired = obs.Default().Counter("monitor_alerts_fired_total",
		"Burn-rate alerts that started firing.")
	monAlertsResolved = obs.Default().Counter("monitor_alerts_resolved_total",
		"Burn-rate alerts that cleared.")
	monTargets = obs.Default().Gauge("monitor_targets",
		"Targets currently tracked across monitor trackers.")
)

// Tracker is the watchtower: it ingests probe outcomes and maintains
// per-target windowed availability, latency, error breakdowns, a health
// state machine, and burn-rate alert evaluations. It implements
// core.ProbeObserver (feeding), and obs.WatchSource + obs.EventSource
// (serving /debug/watch). Safe for concurrent use.
type Tracker struct {
	cfg     Config
	journal *Journal

	mu      sync.Mutex
	targets map[string]*target

	// ring geometry derived from cfg in New
	fineSlots      int
	coarseInterval time.Duration
	coarseSlots    int
}

type target struct {
	name  string
	state State
	since time.Time

	consecFail, consecOK int

	// fine rings (cfg.Interval buckets) back the short burn windows, the
	// degraded ratio, and the dashboard; coarse rings back the long burn
	// windows without holding days of fine buckets.
	okFine, failFine     *obs.WindowedCounter
	okCoarse, failCoarse *obs.WindowedCounter
	rtt                  *obs.WindowedHistogram
	errClasses           map[string]*obs.WindowedCounter

	alerts map[string]*alertState // keyed by BurnWindow.Name

	stateGauge *obs.Gauge
}

// New builds a Tracker and journals its effective configuration.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:     cfg,
		journal: NewJournal(cfg.JournalCap),
		targets: make(map[string]*target),
	}
	// The fine ring must cover every short window, the degraded window,
	// and the dashboard span; the coarse ring covers the longest long
	// window at a granularity bounded to ~1k slots.
	fineSpan := time.Duration(cfg.SeriesPoints) * cfg.Interval
	maxLong := cfg.Interval
	for _, b := range cfg.Burn {
		if b.Short > fineSpan {
			fineSpan = b.Short
		}
		if b.Long > maxLong {
			maxLong = b.Long
		}
	}
	if cfg.DegradedWindow > fineSpan {
		fineSpan = cfg.DegradedWindow
	}
	t.fineSlots = int(fineSpan/cfg.Interval) + 1
	t.coarseInterval = cfg.Interval
	if ci := maxLong / 1024; ci > t.coarseInterval {
		t.coarseInterval = ci
	}
	t.coarseSlots = int(maxLong/t.coarseInterval) + 1
	t.journal.Append(Event{
		Time: t.now(), Type: EventConfig,
		Detail: fmt.Sprintf("interval=%s objective=%g burn-windows=%d down-after=%d healthy-after=%d",
			cfg.Interval, cfg.Objective, len(cfg.Burn), cfg.DownAfter, cfg.HealthyAfter),
	})
	return t
}

func (t *Tracker) now() time.Time {
	if t.cfg.Now == nil {
		return time.Now()
	}
	return t.cfg.Now()
}

// Journal returns the tracker's event journal.
func (t *Tracker) Journal() *Journal { return t.journal }

// WriteEventsJSONL implements obs.EventSource.
func (t *Tracker) WriteEventsJSONL(w io.Writer) error { return t.journal.WriteJSONL(w) }

// State reports a target's current health; ok is false for an untracked
// target.
func (t *Tracker) State(name string) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tg, ok := t.targets[name]
	if !ok {
		return StateHealthy, false
	}
	return tg.state, true
}

// getTarget finds or creates a target's tracking state. Callers hold
// t.mu.
func (t *Tracker) getTarget(name string) *target {
	if tg, ok := t.targets[name]; ok {
		return tg
	}
	mk := func() *obs.WindowedCounter {
		c := obs.NewWindowedCounter(t.cfg.Interval, t.fineSlots)
		c.SetNow(t.cfg.Now)
		return c
	}
	mkCoarse := func() *obs.WindowedCounter {
		c := obs.NewWindowedCounter(t.coarseInterval, t.coarseSlots)
		c.SetNow(t.cfg.Now)
		return c
	}
	rtt := obs.NewWindowedHistogram(t.cfg.Interval, t.cfg.SeriesPoints+1, nil)
	rtt.SetNow(t.cfg.Now)
	tg := &target{
		name:       name,
		state:      StateHealthy,
		since:      t.now(),
		okFine:     mk(),
		failFine:   mk(),
		okCoarse:   mkCoarse(),
		failCoarse: mkCoarse(),
		rtt:        rtt,
		errClasses: make(map[string]*obs.WindowedCounter),
		alerts:     make(map[string]*alertState, len(t.cfg.Burn)),
		stateGauge: obs.Default().Gauge("monitor_state",
			"Target health (0 healthy, 1 degraded, 2 down).", "target", name),
	}
	for _, b := range t.cfg.Burn {
		tg.alerts[b.Name] = &alertState{}
	}
	t.targets[name] = tg
	monTargets.Inc()
	return tg
}

// ObserveProbe ingests one probe outcome: target health bookkeeping,
// windowed counters, and alert evaluation. rtt is recorded only for
// successful probes (failure durations are timeout artifacts, not
// response times); errClass labels the windowed error breakdown.
// It implements core.ProbeObserver.
func (t *Tracker) ObserveProbe(name string, ok bool, rtt time.Duration, errClass string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tg := t.getTarget(name)
	now := t.now()
	if ok {
		tg.okFine.Inc()
		tg.okCoarse.Inc()
		tg.rtt.ObserveDuration(rtt)
		tg.consecOK++
		tg.consecFail = 0
	} else {
		tg.failFine.Inc()
		tg.failCoarse.Inc()
		tg.consecFail++
		tg.consecOK = 0
		if errClass == "" {
			errClass = "unknown"
		}
		ec, have := tg.errClasses[errClass]
		if !have {
			ec = obs.NewWindowedCounter(t.cfg.Interval, t.fineSlots)
			ec.SetNow(t.cfg.Now)
			tg.errClasses[errClass] = ec
		}
		ec.Inc()
	}
	t.stepState(tg, now)
	t.evaluateAlerts(tg, now)
}

// transition moves a target to next, journaling and instrumenting the
// change. Callers hold t.mu.
func (t *Tracker) transition(tg *target, next State, now time.Time, detail string) {
	if tg.state == next {
		return
	}
	t.journal.Append(Event{
		Time: now, Type: EventState, Target: tg.name,
		From: tg.state.String(), To: next.String(), Detail: detail,
	})
	tg.state = next
	tg.since = now
	tg.stateGauge.Set(int64(next))
	monTransitions.Inc()
}

// stepState runs the hysteresis state machine after one observation.
// Callers hold t.mu.
func (t *Tracker) stepState(tg *target, now time.Time) {
	fails := tg.failFine.SumWindow(t.cfg.DegradedWindow)
	total := fails + tg.okFine.SumWindow(t.cfg.DegradedWindow)
	ratio := 0.0
	if total > 0 {
		ratio = float64(fails) / float64(total)
	}
	switch {
	case tg.consecFail >= t.cfg.DownAfter:
		t.transition(tg, StateDown, now,
			fmt.Sprintf("%d consecutive failures", tg.consecFail))
	case tg.state == StateHealthy:
		if total >= uint64(t.cfg.MinSamples) && ratio >= t.cfg.DegradedRatio {
			t.transition(tg, StateDegraded, now,
				fmt.Sprintf("failure ratio %.2f over %s", ratio, t.cfg.DegradedWindow))
		}
	default: // Degraded or Down: recover only through the hysteresis band
		if tg.consecOK >= t.cfg.HealthyAfter && ratio < t.cfg.DegradedRatio/2 {
			t.transition(tg, StateHealthy, now,
				fmt.Sprintf("%d consecutive successes, ratio %.2f", tg.consecOK, ratio))
		}
	}
}

// rates returns failures and totals over the trailing window d, picking
// the ring whose span covers it. Callers hold t.mu.
func (t *Tracker) rates(tg *target, d time.Duration) (failures, total uint64) {
	if d <= tg.okFine.Span() {
		failures = tg.failFine.SumWindow(d)
		return failures, failures + tg.okFine.SumWindow(d)
	}
	failures = tg.failCoarse.SumWindow(d)
	return failures, failures + tg.okCoarse.SumWindow(d)
}

// evaluateAlerts re-evaluates every burn window for a target, journaling
// fire/resolve edges. Callers hold t.mu.
func (t *Tracker) evaluateAlerts(tg *target, now time.Time) {
	budget := 1 - t.cfg.Objective
	for _, b := range t.cfg.Burn {
		as := tg.alerts[b.Name]
		failS, totS := t.rates(tg, b.Short)
		failL, totL := t.rates(tg, b.Long)
		as.burnShort = burnRate(failS, totS, budget)
		as.burnLong = burnRate(failL, totL, budget)
		firing := as.burnShort > b.Factor && as.burnLong > b.Factor
		if firing == as.firing {
			continue
		}
		as.firing = firing
		as.since = now
		if firing {
			monAlertsFired.Inc()
			t.journal.Append(Event{
				Time: now, Type: EventAlertFire, Target: tg.name, Alert: b.Name,
				Detail: fmt.Sprintf("burn %.1f/%.1f over %s/%s exceeds ×%g (objective %g)",
					as.burnShort, as.burnLong, b.Short, b.Long, b.Factor, t.cfg.Objective),
			})
		} else {
			monAlertsResolved.Inc()
			t.journal.Append(Event{
				Time: now, Type: EventAlertResolve, Target: tg.name, Alert: b.Name,
				Detail: fmt.Sprintf("burn %.1f/%.1f back under ×%g", as.burnShort, as.burnLong, b.Factor),
			})
		}
	}
}

// AlertFiring reports whether the named burn alert is firing for a
// target.
func (t *Tracker) AlertFiring(name, burnWindow string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	tg, ok := t.targets[name]
	if !ok {
		return false
	}
	as, ok := tg.alerts[burnWindow]
	return ok && as.firing
}

// noNaN maps the empty-window NaN quantile onto 0 so reports stay
// JSON-encodable.
func noNaN(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WatchReport implements obs.WatchSource: the /debug/watch JSON body.
func (t *Tracker) WatchReport() obs.WatchReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	window := time.Duration(t.cfg.SeriesPoints) * t.cfg.Interval
	rep := obs.WatchReport{
		Now:          t.now().UTC(),
		WindowSecs:   window.Seconds(),
		IntervalSecs: t.cfg.Interval.Seconds(),
		Targets:      make([]obs.WatchTarget, 0, len(t.targets)),
	}
	names := make([]string, 0, len(t.targets))
	for name := range t.targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tg := t.targets[name]
		fails := tg.failFine.SumWindow(window)
		total := fails + tg.okFine.SumWindow(window)
		avail := 1.0
		if total > 0 {
			avail = float64(total-fails) / float64(total)
		}
		wt := obs.WatchTarget{
			Target:       name,
			State:        tg.state.String(),
			Since:        tg.since.UTC(),
			Samples:      total,
			Failures:     fails,
			Availability: avail,
			P50Ms:        noNaN(tg.rtt.Quantile(0.5, window)) * 1000,
			P95Ms:        noNaN(tg.rtt.Quantile(0.95, window)) * 1000,
			P99Ms:        noNaN(tg.rtt.Quantile(0.99, window)) * 1000,
		}
		for class, c := range tg.errClasses {
			if n := c.SumWindow(window); n > 0 {
				if wt.Errors == nil {
					wt.Errors = make(map[string]uint64)
				}
				wt.Errors[class] = n
			}
		}
		for _, b := range t.cfg.Burn {
			as := tg.alerts[b.Name]
			wt.Alerts = append(wt.Alerts, obs.WatchAlert{
				Window: b.Name, Firing: as.firing, Factor: b.Factor,
				BurnShort: noNaN(as.burnShort), BurnLong: noNaN(as.burnLong),
				Since: as.since,
			})
		}
		okB := tg.okFine.Buckets(window)
		failB := tg.failFine.Buckets(window)
		qs := tg.rtt.BucketQuantiles(window, 0.5, 0.95, 0.99)
		n := len(okB)
		if len(qs) < n {
			n = len(qs)
		}
		wt.Series = make([]obs.WatchPoint, 0, n)
		for i := 0; i < n; i++ {
			wt.Series = append(wt.Series, obs.WatchPoint{
				Time:     okB[i].Start,
				Total:    okB[i].Count + failB[i].Count,
				Failures: failB[i].Count,
				P50Ms:    noNaN(qs[i].Q[0]) * 1000,
				P95Ms:    noNaN(qs[i].Q[1]) * 1000,
				P99Ms:    noNaN(qs[i].Q[2]) * 1000,
			})
		}
		rep.Targets = append(rep.Targets, wt)
	}
	return rep
}
