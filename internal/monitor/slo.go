package monitor

import "time"

// BurnWindow is one multi-window burn-rate alert rule: the alert fires
// when the error budget is being consumed at more than Factor times the
// sustainable rate over BOTH the long window (evidence the problem is
// real) and the short window (evidence it is still happening — this is
// what makes alerts auto-resolve quickly after recovery).
//
// Burn rate is errorRate / (1 - objective): burning at exactly 1.0
// consumes the whole budget over the SLO period; 14.4 over a 1h window
// consumes 2% of a 30-day budget in that hour.
type BurnWindow struct {
	// Name labels the pair in alerts and the journal ("fast", "slow").
	Name string
	// Short and Long are the two evaluation windows; Short must not
	// exceed Long.
	Short time.Duration
	Long  time.Duration
	// Factor is the burn-rate threshold both windows must exceed.
	Factor float64
}

// DefaultBurnWindows returns the two-pair configuration from the SRE
// workbook: a fast pair that pages within minutes of a hard outage and a
// slow pair that catches a simmering budget leak. Tests scale these to
// virtual time; production watches run them as-is.
func DefaultBurnWindows() []BurnWindow {
	return []BurnWindow{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Factor: 14.4},
		{Name: "slow", Short: 6 * time.Hour, Long: 3 * 24 * time.Hour, Factor: 1},
	}
}

// alertState tracks one (target, burn window) alert across evaluations.
type alertState struct {
	firing bool
	since  time.Time
	// burnShort/burnLong are the most recent evaluation, surfaced in
	// the watch report.
	burnShort, burnLong float64
}

// burnRate converts windowed failure/total counts into a burn rate
// against the error budget. No samples means no evidence: burn 0.
func burnRate(failures, total uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(failures) / float64(total)) / budget
}
