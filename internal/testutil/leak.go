// Package testutil holds small helpers shared across the repo's test
// suites. Production code must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// GoroutineBaseline snapshots the current goroutine count. Call it
// before starting the code under test and pass the result to
// WaitNoLeaks afterwards.
func GoroutineBaseline() int {
	return runtime.NumGoroutine()
}

// WaitNoLeaks polls until the goroutine count returns to the baseline or
// two seconds elapse, then fails the test with a full stack dump if
// goroutines are still outstanding. The polling loop absorbs the
// scheduling lag between closing a component and its goroutines actually
// exiting; a hard sleep would either flake or waste the full window on
// every run.
func WaitNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Errorf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}
