package dns53

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"encdns/internal/bufpool"
	"encdns/internal/dnswire"
)

// WriteTCPMsg writes one DNS message with the RFC 1035 §4.2.2 two-octet
// length prefix. It is used by the TCP and DoT transports. The frame is
// assembled in a pooled buffer and written in one call so the message
// cannot be split across a slow-start boundary by a second write.
func WriteTCPMsg(w io.Writer, msg []byte) error {
	if len(msg) > dnswire.MaxMessageSize {
		return dnswire.ErrMessageTooLarge
	}
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	buf := append(append((*bp)[:0], byte(len(msg)>>8), byte(len(msg))), msg...)
	*bp = buf
	_, err := w.Write(buf)
	return err
}

// ReadTCPMsg reads one length-prefixed DNS message. A zero-length frame is
// rejected as malformed.
func ReadTCPMsg(r io.Reader) ([]byte, error) {
	return readTCPMsgInto(r, nil)
}

// readTCPMsgInto is ReadTCPMsg reading the payload into buf (grown as
// needed), so stream loops can reuse one buffer across messages.
func readTCPMsgInto(r io.Reader, buf []byte) ([]byte, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(l[:]))
	if n == 0 {
		return nil, fmt.Errorf("dns53: zero-length TCP frame")
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// netipFrom converts a net.IP to netip.Addr, unmapping 4-in-6 forms.
func netipFrom(ip []byte) (netip.Addr, bool) {
	a, ok := netip.AddrFromSlice(ip)
	if !ok {
		return netip.Addr{}, false
	}
	return a.Unmap(), true
}
