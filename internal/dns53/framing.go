package dns53

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"encdns/internal/dnswire"
)

// WriteTCPMsg writes one DNS message with the RFC 1035 §4.2.2 two-octet
// length prefix. It is used by the TCP and DoT transports.
func WriteTCPMsg(w io.Writer, msg []byte) error {
	if len(msg) > dnswire.MaxMessageSize {
		return dnswire.ErrMessageTooLarge
	}
	buf := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(buf, uint16(len(msg)))
	copy(buf[2:], msg)
	_, err := w.Write(buf)
	return err
}

// ReadTCPMsg reads one length-prefixed DNS message. A zero-length frame is
// rejected as malformed.
func ReadTCPMsg(r io.Reader) ([]byte, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(l[:])
	if n == 0 {
		return nil, fmt.Errorf("dns53: zero-length TCP frame")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// netipFrom converts a net.IP to netip.Addr, unmapping 4-in-6 forms.
func netipFrom(ip []byte) (netip.Addr, bool) {
	a, ok := netip.AddrFromSlice(ip)
	if !ok {
		return netip.Addr{}, false
	}
	return a.Unmap(), true
}
