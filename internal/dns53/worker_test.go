package dns53

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/testutil"
	"encdns/internal/udpbatch"
)

// TestWorkerPoolShutdownDrains exercises the full batched UDP pipeline
// under concurrent load and then shuts down mid-stream: every in-flight
// query must either be answered or dropped cleanly, the worker pool must
// exit (no leaked goroutines), and post-shutdown ServeUDP must refuse.
func TestWorkerPoolShutdownDrains(t *testing.T) {
	baseline := testutil.GoroutineBaseline()

	var served sync.WaitGroup
	handler := HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		return q.Reply(), nil
	})
	s := &Server{Handler: handler, UDPWorkers: 4, UDPBatch: 8}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served.Add(1)
	go func() {
		defer served.Done()
		if err := s.ServeUDP(pc); err != nil {
			t.Errorf("ServeUDP: %v", err)
		}
	}()

	// Hammer the server from several client sockets while it runs.
	q := dnswire.NewQuery(7, "drain.example.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	answered := make(chan struct{}, 1024)
	var clients sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			c, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return
			}
			defer c.Close()
			buf := make([]byte, 512)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.WriteTo(wire, pc.LocalAddr()); err != nil {
					return
				}
				_ = c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
				if _, _, err := c.ReadFrom(buf); err == nil {
					select {
					case answered <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	// Wait for proof the pipeline works end to end before shutting down.
	select {
	case <-answered:
	case <-time.After(5 * time.Second):
		t.Fatal("no query answered through the batched pipeline")
	}
	s.Shutdown()
	close(stop)
	clients.Wait()
	served.Wait()

	// ServeUDP after shutdown must refuse and close the socket.
	pc2, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ServeUDP(pc2); err == nil {
		t.Error("ServeUDP after Shutdown returned nil error")
	}

	testutil.WaitNoLeaks(t, baseline)
}

// TestShutdownIdempotent verifies repeated Shutdown calls return without
// hanging or double-closing the worker channel.
func TestShutdownIdempotent(t *testing.T) {
	s := &Server{Handler: HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		return q.Reply(), nil
	})}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.ServeUDP(pc)
	}()
	time.Sleep(20 * time.Millisecond)
	s.Shutdown()
	s.Shutdown()
	s.Shutdown()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not return after Shutdown")
	}
}

// TestUDPBatchClamped ensures a configured batch above udpbatch.MaxBatch
// is clamped rather than over-allocating vectors.
func TestUDPBatchClamped(t *testing.T) {
	s := &Server{UDPBatch: udpbatch.MaxBatch * 10}
	if got := s.udpBatch(); got != udpbatch.MaxBatch {
		t.Errorf("udpBatch() = %d, want %d", got, udpbatch.MaxBatch)
	}
	s.UDPBatch = 0
	if got := s.udpBatch(); got != udpbatch.DefaultBatch {
		t.Errorf("udpBatch() = %d, want %d", got, udpbatch.DefaultBatch)
	}
}
