// Package dns53 implements conventional DNS transport (RFC 1035 §4.2):
// a UDP client with retry and truncation fallback, a TCP client with
// two-octet length framing, and a concurrent UDP/TCP server framework with
// a handler interface. The DoT and DoH packages layer their transports over
// the same Handler, so one resolver implementation can serve all three
// protocols — exactly how the measured public resolvers are deployed.
package dns53

import (
	"context"
	"net"

	"encdns/internal/dnswire"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use; the servers invoke ServeDNS from many goroutines.
type Handler interface {
	// ServeDNS produces the response for query. Returning nil or an error
	// makes the server answer SERVFAIL.
	ServeDNS(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)
}

// ResponseAppender is the optional wire-template fast path a Handler may
// implement (internal/resolver's cache-backed handlers do): append the
// complete packed response for query onto dst without materializing
// records or re-packing. rawQuestion is the request's question section
// verbatim — implementations echo it so the client's 0x20 mixed-case
// spelling survives. minTTL is the minimum answer TTL in seconds (-1
// when the response has no answers; DoH turns it into Cache-Control).
// ok=false means "not on this query" — the server falls back to ServeDNS
// with no state to undo, so implementations must decline rather than
// answer approximately. Implementations must not panic: unlike ServeDNS,
// this path runs without the server's panic containment.
type ResponseAppender interface {
	AppendResponse(dst []byte, query *dnswire.Message, rawQuestion []byte) (out []byte, minTTL int64, ok bool)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, query)
}

// Static returns a handler that answers every A/AAAA question from the
// given name → address map and NXDOMAIN otherwise. It is a building block
// for tests and examples; real deployments use internal/resolver.
func Static(records map[string][]net.IP) Handler {
	return HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		r.Header.RA = true
		q0 := q.Question0()
		ips, ok := records[dnswire.CanonicalName(q0.Name)]
		if !ok {
			r.Header.RCode = dnswire.RCodeNXDomain
			return r, nil
		}
		for _, ip := range ips {
			if ip4 := ip.To4(); ip4 != nil && q0.Type == dnswire.TypeA {
				addr, _ := netipFrom(ip4)
				r.Answers = append(r.Answers, dnswire.Record{
					Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
					TTL: 300, Data: &dnswire.A{Addr: addr},
				})
			} else if ip4 == nil && q0.Type == dnswire.TypeAAAA {
				addr, _ := netipFrom(ip)
				r.Answers = append(r.Answers, dnswire.Record{
					Name: q0.Name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN,
					TTL: 300, Data: &dnswire.AAAA{Addr: addr},
				})
			}
		}
		return r, nil
	})
}

// servfail builds the SERVFAIL response for a query.
func servfail(q *dnswire.Message) *dnswire.Message {
	r := q.Reply()
	r.Header.RCode = dnswire.RCodeServFail
	return r
}
