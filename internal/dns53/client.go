package dns53

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Errors returned by the client.
var (
	ErrIDMismatch = errors.New("dns53: response ID does not match query")
	ErrNotReply   = errors.New("dns53: response is not a reply")
)

// Client issues conventional DNS queries over UDP with automatic retry and
// RFC 1035 §4.2.2 TCP fallback on truncation.
type Client struct {
	// Timeout bounds each individual attempt; zero means 2 seconds.
	Timeout time.Duration
	// Retries is the number of extra UDP attempts after the first; zero
	// means 2 (three attempts total), the classic stub-resolver default.
	// Negative disables the built-in loop entirely (one attempt) — the
	// transport layer's shared retry middleware sets this so policy is
	// not applied twice.
	Retries int
	// Dialer is used for both "udp" and "tcp" connections; nil uses a
	// net.Dialer. Injecting a dialer is how tests and the live prober run
	// the client over in-process transports.
	Dialer ContextDialer
	// EDNSSize advertises an EDNS0 buffer size on queries when non-zero.
	EDNSSize uint16
}

// ContextDialer matches net.Dialer's DialContext, the injection point for
// custom transports.
type ContextDialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

func (c *Client) retries() int {
	switch {
	case c.Retries > 0:
		return c.Retries
	case c.Retries < 0:
		return 0
	}
	return 2
}

func (c *Client) dialer() ContextDialer {
	if c.Dialer != nil {
		return c.Dialer
	}
	return &net.Dialer{}
}

// NewID returns a cryptographically random message ID. Predictable IDs
// enable off-path spoofing (the cache-poisoning attacks that motivated
// encrypted DNS in the first place).
func NewID() uint16 {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("dns53: reading random ID: " + err.Error())
	}
	return binary.BigEndian.Uint16(b[:])
}

// Query builds and exchanges an A-record query for name, the measurement
// tool's common case.
func (c *Client) Query(ctx context.Context, server, name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(NewID(), name, t)
	if c.EDNSSize > 0 {
		q.SetEDNS(c.EDNSSize, false)
	}
	return c.Exchange(ctx, q, server)
}

// Exchange sends query to server ("host:port") and returns the validated
// response, retrying over UDP and falling back to TCP when the response
// arrives truncated.
func (c *Client) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	wire, err := query.AppendPack((*bp)[:0])
	if err != nil {
		return nil, fmt.Errorf("dns53: packing query: %w", err)
	}
	*bp = wire
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		resp, err := c.exchangeUDP(ctx, wire, query.Header.ID, server)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if resp.Header.TC {
			return c.ExchangeTCP(ctx, query, server)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("dns53: all UDP attempts failed: %w", lastErr)
}

func (c *Client) exchangeUDP(ctx context.Context, wire []byte, id uint16, server string) (*dnswire.Message, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	dialSp := obs.SpanFromContext(ctx).Start("dial")
	conn, err := c.dialer().DialContext(attemptCtx, "udp", server)
	dialSp.End()
	if err != nil {
		return nil, fmt.Errorf("dns53: dial udp %s: %w", server, err)
	}
	defer conn.Close()
	// Unblock reads on both deadline expiry and caller cancellation.
	stop := context.AfterFunc(attemptCtx, func() { conn.Close() })
	defer stop()
	if d, ok := attemptCtx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	writeSp := obs.SpanFromContext(ctx).Start("write")
	if _, err := conn.Write(wire); err != nil {
		writeSp.End()
		return nil, fmt.Errorf("dns53: send: %w", err)
	}
	writeSp.End()
	readSp := obs.SpanFromContext(ctx).Start("first-byte")
	defer readSp.End()
	bp := bufpool.GetN(64 * 1024)
	defer bufpool.Put(bp)
	buf := *bp
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("dns53: receive: %w", err)
		}
		readSp.End()
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			// Malformed or spoofed datagram; keep waiting for the real one.
			continue
		}
		if resp.Header.ID != id {
			continue // stale or spoofed response
		}
		if !resp.Header.QR {
			return nil, ErrNotReply
		}
		return resp, nil
	}
}

// ExchangeTCP performs one query over a fresh TCP connection.
func (c *Client) ExchangeTCP(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	wire, err := query.AppendPack((*bp)[:0])
	if err != nil {
		return nil, fmt.Errorf("dns53: packing query: %w", err)
	}
	*bp = wire
	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	dialSp := obs.SpanFromContext(ctx).Start("dial")
	conn, err := c.dialer().DialContext(attemptCtx, "tcp", server)
	dialSp.End()
	if err != nil {
		return nil, fmt.Errorf("dns53: dial tcp %s: %w", server, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(attemptCtx, func() { conn.Close() })
	defer stop()
	if d, ok := attemptCtx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	exSp := obs.SpanFromContext(ctx).Start("exchange")
	defer exSp.End()
	return ExchangeConn(conn, query, wire)
}

// ExchangeConn performs one length-framed exchange on an established stream
// connection. DoT shares it. wire may be nil, in which case query is packed.
func ExchangeConn(conn net.Conn, query *dnswire.Message, wire []byte) (*dnswire.Message, error) {
	if wire == nil {
		var err error
		if wire, err = query.Pack(); err != nil {
			return nil, fmt.Errorf("dns53: packing query: %w", err)
		}
	}
	if err := WriteTCPMsg(conn, wire); err != nil {
		return nil, fmt.Errorf("dns53: send: %w", err)
	}
	raw, err := ReadTCPMsg(conn)
	if err != nil {
		return nil, fmt.Errorf("dns53: receive: %w", err)
	}
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, fmt.Errorf("dns53: parsing response: %w", err)
	}
	if resp.Header.ID != query.Header.ID {
		return nil, ErrIDMismatch
	}
	if !resp.Header.QR {
		return nil, ErrNotReply
	}
	return resp, nil
}
