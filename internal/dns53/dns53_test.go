package dns53

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

// startServer launches a Server with the handler on loopback UDP and TCP,
// returning the address (same port is not guaranteed between the two, so
// both are returned) and a shutdown func.
func startServer(t *testing.T, h Handler) (udpAddr, tcpAddr string, srv *Server) {
	t.Helper()
	srv = &Server{Handler: h}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen udp: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen tcp: %v", err)
	}
	go srv.ServeUDP(pc)
	go srv.ServeTCP(ln)
	t.Cleanup(srv.Shutdown)
	return pc.LocalAddr().String(), ln.Addr().String(), srv
}

func staticHandler() Handler {
	return Static(map[string][]net.IP{
		"google.com.":    {net.ParseIP("142.250.1.100")},
		"wikipedia.com.": {net.ParseIP("208.80.154.224"), net.ParseIP("2620:0:861:ed1a::1")},
	})
}

func TestUDPQuery(t *testing.T) {
	udp, _, _ := startServer(t, staticHandler())
	c := &Client{}
	resp, err := c.Query(context.Background(), udp, "google.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	a := resp.Answers[0].Data.(*dnswire.A)
	if a.Addr.String() != "142.250.1.100" {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestUDPNXDomain(t *testing.T) {
	udp, _, _ := startServer(t, staticHandler())
	c := &Client{}
	resp, err := c.Query(context.Background(), udp, "nonexistent.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}
}

func TestTCPQuery(t *testing.T) {
	_, tcp, _ := startServer(t, staticHandler())
	c := &Client{}
	q := dnswire.NewQuery(NewID(), "google.com", dnswire.TypeA)
	resp, err := c.ExchangeTCP(context.Background(), q, tcp)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	_, tcp, _ := startServer(t, staticHandler())
	conn, err := net.Dial("tcp", tcp)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(NewID(), "google.com", dnswire.TypeA)
		resp, err := ExchangeConn(conn, q, nil)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("query %d answers = %d", i, len(resp.Answers))
		}
	}
}

func TestAAAAQuery(t *testing.T) {
	udp, _, _ := startServer(t, staticHandler())
	c := &Client{}
	resp, err := c.Query(context.Background(), udp, "wikipedia.com", dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	aaaa := resp.Answers[0].Data.(*dnswire.AAAA)
	if aaaa.Addr.String() != "2620:0:861:ed1a::1" {
		t.Errorf("addr = %v", aaaa.Addr)
	}
}

func TestTruncationFallback(t *testing.T) {
	// A handler that answers with many records, overflowing 512 bytes so
	// the UDP path truncates and the client retries over TCP.
	big := HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		for i := 0; i < 60; i++ {
			r.Answers = append(r.Answers, dnswire.Record{
				Name: "txt.example.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60,
				Data: &dnswire.TXT{Strings: []string{strings.Repeat("x", 50)}},
			})
		}
		return r, nil
	})
	srv := &Server{Handler: big}
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	// TCP listener on the SAME port as UDP so the fallback finds it.
	tcpLn, err := net.Listen("tcp", pc.LocalAddr().String())
	if err != nil {
		t.Skipf("cannot bind matching TCP port: %v", err)
	}
	go srv.ServeUDP(pc)
	go srv.ServeTCP(tcpLn)
	defer srv.Shutdown()

	c := &Client{}
	resp, err := c.Query(context.Background(), pc.LocalAddr().String(), "txt.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.TC {
		t.Error("final response still truncated")
	}
	if len(resp.Answers) != 60 {
		t.Errorf("answers = %d, want 60 via TCP", len(resp.Answers))
	}
}

func TestEDNSRaisesUDPLimit(t *testing.T) {
	// ~30 TXT answers ≈ 1.7 KB: over 512 but under a 4096 EDNS buffer, so
	// with EDNS the answer arrives over UDP un-truncated.
	big := HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		for i := 0; i < 30; i++ {
			r.Answers = append(r.Answers, dnswire.Record{
				Name: "txt.example.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60,
				Data: &dnswire.TXT{Strings: []string{strings.Repeat("y", 50)}},
			})
		}
		return r, nil
	})
	udp, _, _ := startServer(t, big)
	c := &Client{EDNSSize: 4096}
	resp, err := c.Query(context.Background(), udp, "txt.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.TC || len(resp.Answers) != 30 {
		t.Errorf("TC=%v answers=%d, want full UDP answer", resp.Header.TC, len(resp.Answers))
	}
}

func TestServerAnswersServfailOnHandlerError(t *testing.T) {
	h := HandlerFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("boom")
	})
	udp, _, _ := startServer(t, h)
	c := &Client{}
	resp, err := c.Query(context.Background(), udp, "any.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Header.RCode)
	}
}

func TestServerContainsHandlerPanic(t *testing.T) {
	h := HandlerFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		panic("handler bug")
	})
	udp, _, _ := startServer(t, h)
	c := &Client{}
	resp, err := c.Query(context.Background(), udp, "any.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL after panic", resp.Header.RCode)
	}
}

func TestServerIgnoresGarbageUDP(t *testing.T) {
	udp, _, _ := startServer(t, staticHandler())
	conn, err := net.Dial("udp", udp)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not dns")); err != nil {
		t.Fatal(err)
	}
	// Server must survive; a real query afterwards still works.
	c := &Client{}
	if _, err := c.Query(context.Background(), udp, "google.com", dnswire.TypeA); err != nil {
		t.Fatalf("query after garbage: %v", err)
	}
}

func TestServerIgnoresGarbageTCP(t *testing.T) {
	_, tcp, _ := startServer(t, staticHandler())
	conn, err := net.Dial("tcp", tcp)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0, 3, 'b', 'a', 'd'})
	conn.Close()
	c := &Client{}
	q := dnswire.NewQuery(NewID(), "google.com", dnswire.TypeA)
	if _, err := c.ExchangeTCP(context.Background(), q, tcp); err != nil {
		t.Fatalf("query after garbage: %v", err)
	}
}

func TestClientTimeout(t *testing.T) {
	// A UDP socket nobody answers from.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	c := &Client{Timeout: 50 * time.Millisecond, Retries: 1}
	start := time.Now()
	_, err = c.Query(context.Background(), pc.LocalAddr().String(), "google.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("took %v, timeouts not enforced", elapsed)
	}
}

func TestClientContextCancel(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	c := &Client{Timeout: 5 * time.Second}
	start := time.Now()
	_, err = c.Query(ctx, pc.LocalAddr().String(), "google.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation not honoured promptly")
	}
}

func TestClientIgnoresMismatchedID(t *testing.T) {
	// A fake server that first sends a response with the wrong ID, then
	// the right one; the client must skip the first.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 4096)
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		bad := q.Reply()
		bad.Header.ID ^= 0xFFFF
		badWire, _ := bad.Pack()
		_, _ = pc.WriteTo(badWire, from)
		good := q.Reply()
		goodWire, _ := good.Pack()
		_, _ = pc.WriteTo(goodWire, from)
	}()
	c := &Client{}
	resp, err := c.Query(context.Background(), pc.LocalAddr().String(), "example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || !resp.Header.QR {
		t.Error("no valid response")
	}
}

func TestFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte{1, 2, 3, 4, 5}
	if err := WriteTCPMsg(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip = %v", got)
	}
}

func TestFramingZeroLength(t *testing.T) {
	if _, err := ReadTCPMsg(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
}

func TestFramingShortRead(t *testing.T) {
	if _, err := ReadTCPMsg(bytes.NewReader([]byte{0, 5, 1, 2})); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := ReadTCPMsg(bytes.NewReader([]byte{0})); err == nil {
		t.Error("short prefix accepted")
	}
}

func TestFramingTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTCPMsg(&buf, make([]byte, dnswire.MaxMessageSize+1)); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestNewIDVaries(t *testing.T) {
	seen := make(map[uint16]bool)
	for i := 0; i < 100; i++ {
		seen[NewID()] = true
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct IDs in 100 draws", len(seen))
	}
}

func TestShutdownUnblocksServe(t *testing.T) {
	srv := &Server{Handler: staticHandler()}
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	errs := make(chan error, 2)
	go func() { errs <- srv.ServeUDP(pc) }()
	go func() { errs <- srv.ServeTCP(ln) }()
	time.Sleep(20 * time.Millisecond)
	srv.Shutdown()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Errorf("serve returned %v after shutdown", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("serve did not return after shutdown")
		}
	}
	// Serving after shutdown refuses.
	pc2, _ := net.ListenPacket("udp", "127.0.0.1:0")
	if err := srv.ServeUDP(pc2); err == nil {
		t.Error("ServeUDP after shutdown succeeded")
	}
}
