package dns53

import (
	"context"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dnswire"
	"encdns/internal/udpbatch"
)

// discardPacketConn satisfies net.PacketConn for benchmarking the UDP
// dispatch path without a kernel socket.
type discardPacketConn struct{}

func (discardPacketConn) ReadFrom(p []byte) (int, net.Addr, error)  { return 0, nil, io.EOF }
func (discardPacketConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }
func (discardPacketConn) Close() error                              { return nil }
func (discardPacketConn) LocalAddr() net.Addr                       { return &net.UDPAddr{} }
func (discardPacketConn) SetDeadline(time.Time) error               { return nil }
func (discardPacketConn) SetReadDeadline(time.Time) error           { return nil }
func (discardPacketConn) SetWriteDeadline(time.Time) error          { return nil }

// BenchmarkServeUDP measures the per-packet worker path — pooled unpack
// with reused decode state, handler dispatch, response pack into a pooled
// buffer, batched-writer enqueue — with the socket and channel hop
// factored out, exactly as one pool worker runs it.
func BenchmarkServeUDP(b *testing.B) {
	answer := HandlerFunc(func(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		resp := q.Reply()
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: q.Question0().Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 300, Data: &dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})},
		})
		return resp, nil
	})
	s := &Server{Handler: answer}
	q := dnswire.NewQuery(0x1234, "www.example.com.", dnswire.TypeA)
	q.SetEDNS(1232, false)
	wire, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 53535}
	w := &udpWriter{conn: udpbatch.NewConn(discardPacketConn{})}
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp := bufpool.GetN(len(wire))
		copy(*bp, wire) // the job owns its buffer; refill like the read loop does
		*bp = (*bp)[:len(wire)]
		s.serveUDPPacket(udpJob{w: w, bp: bp, addr: from}, query)
	}
}
