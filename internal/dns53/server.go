package dns53

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
	"encdns/internal/udpbatch"
)

// Server-side instruments shared by every frontend that dispatches
// through respond (Do53 UDP/TCP, DoT via ServeStream, DoH via Respond).
var (
	serverRequests = obs.Default().Counter("dns53_server_requests_total",
		"Queries dispatched to the server's handler.")
	serverFailures = obs.Default().Counter("dns53_server_failures_total",
		"Handler errors, panics, and nil responses (answered SERVFAIL).")
	serverLatency = obs.Default().Histogram("dns53_server_seconds",
		"Handler latency per dispatched query.", nil)
	serverMalformed = obs.Default().Counter("dns53_server_malformed_total",
		"Dropped queries that failed wire parsing.")
	// Worker-pool instruments: queue depth counts jobs handed off but not
	// yet picked up (including producers blocked on a full channel), the
	// worker gauge counts live pool goroutines across servers.
	workerQueueDepth = obs.Default().Gauge("dns53_udp_worker_queue_depth",
		"UDP queries queued for the worker pool, not yet being handled.")
	workerCount = obs.Default().Gauge("dns53_udp_workers",
		"Live UDP worker-pool goroutines across servers.")
)

// maxUDPDatagram sizes receive buffers: a UDP DNS message cannot exceed
// the 64 KiB UDP payload limit.
const maxUDPDatagram = 64 * 1024

// Server serves DNS over UDP and TCP. Configure Handler, then pass
// listeners to ServeUDP/ServeTCP (each blocks; run them in goroutines) and
// call Shutdown to stop. The zero value is not usable; populate Handler.
//
// The UDP frontend is a batched worker-pool pipeline: each listener
// socket gets one receive loop that pulls up to UDPBatch datagrams per
// syscall (recvmmsg on Linux via internal/udpbatch) directly into pooled
// buffers and hands them to a bounded pool of workers; workers parse with
// per-worker reusable decode state, run the handler, pack into pooled
// buffers, and push responses through a flush-combining writer that sends
// whole batches back per syscall (sendmmsg). Steady-state load therefore
// runs without per-packet goroutine spawns or buffer allocations. Pass
// several SO_REUSEPORT sockets from udpbatch.Listen to ServeUDP (one call
// each) to spread receive load across loops.
type Server struct {
	Handler Handler
	// Logger receives malformed-packet and handler-failure notices; nil
	// discards them (the obs.Logger convention: quiet by default).
	Logger *obs.Logger
	// ReadTimeout bounds each TCP read, which also serves as the per-
	// connection idle timeout for TCP and DoT streams; zero means 10
	// seconds.
	ReadTimeout time.Duration
	// MaxUDPResponse truncates UDP responses longer than this (TC bit set);
	// zero means dnswire.MaxUDPSize, raised per-query by EDNS.
	MaxUDPResponse int
	// UDPWorkers bounds the worker pool shared by every UDP listener on
	// this server, and with it handler concurrency: handlers that block
	// on upstream I/O (forwarders, recursion) need enough workers to
	// cover rate × handler latency. Zero means 32×GOMAXPROCS with a
	// floor of 64 — generous for blocking handlers, still a hard bound.
	// The pool starts with the first ServeUDP call.
	UDPWorkers int
	// UDPBatch caps datagrams moved per batched read or write; zero means
	// udpbatch.DefaultBatch. One means strict packet-at-a-time behaviour.
	UDPBatch int

	mu       sync.Mutex
	closed   bool
	udpConns []net.PacketConn
	tcpLns   []net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	jobs     chan udpJob
	udpLoops sync.WaitGroup
	workerWG sync.WaitGroup
}

// logger returns the configured logger; a nil *obs.Logger discards, so
// no fallback construction is needed.
func (s *Server) logger() *obs.Logger { return s.Logger }

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 10 * time.Second
}

func (s *Server) udpWorkers() int {
	if s.UDPWorkers > 0 {
		return s.UDPWorkers
	}
	n := 32 * runtime.GOMAXPROCS(0)
	if n < 64 {
		n = 64
	}
	return n
}

func (s *Server) udpBatch() int {
	switch {
	case s.UDPBatch > udpbatch.MaxBatch:
		return udpbatch.MaxBatch
	case s.UDPBatch > 0:
		return s.UDPBatch
	}
	return udpbatch.DefaultBatch
}

// track registers a listener or conn for Shutdown. It reports false when
// the server is already closed.
func (s *Server) track(pc net.PacketConn, ln net.Listener, c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	switch {
	case pc != nil:
		s.udpConns = append(s.udpConns, pc)
	case ln != nil:
		s.tcpLns = append(s.tcpLns, ln)
	case c != nil:
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown closes all listeners and connections, drains in-flight
// queries (queued UDP jobs are still answered; new packets are refused
// because the sockets are closed), stops the worker pool, and waits for
// everything to finish. It is idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, pc := range s.udpConns {
		pc.Close()
	}
	for _, ln := range s.tcpLns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	jobs := s.jobs
	s.mu.Unlock()
	// Receive loops exit once their sockets close; only then is it safe
	// to close the job channel the workers drain.
	s.udpLoops.Wait()
	if jobs != nil {
		close(jobs)
	}
	s.workerWG.Wait()
	s.wg.Wait()
}

// startUDPWorkers launches the bounded worker pool once, sized by
// UDPWorkers. The job channel is buffered so receive loops can hand off
// a full batch without a context switch per packet; beyond that they
// block, pushing overload back into the kernel socket buffer where
// excess is dropped cheaply instead of ballooning goroutines.
func (s *Server) startUDPWorkers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs != nil || s.closed {
		return
	}
	n := s.udpWorkers()
	s.jobs = make(chan udpJob, 4*n)
	s.workerWG.Add(n)
	workerCount.Add(int64(n))
	for i := 0; i < n; i++ {
		go s.udpWorker()
	}
}

// udpJob is one received datagram awaiting a worker: the pooled buffer
// holding the packet, its origin, and the writer to answer through.
type udpJob struct {
	w    *udpWriter
	bp   *[]byte
	addr net.Addr
}

// ServeUDP answers queries arriving on pc until the connection is
// closed. It blocks; call it once per listener socket (multiple calls
// share one worker pool). Any net.PacketConn works — kernel UDP sockets
// take the batched fast path, everything else (tests, netsim virtual
// conns) the portable one-datagram adapter.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	if !s.track(pc, nil, nil) {
		pc.Close()
		return errors.New("dns53: server closed")
	}
	s.startUDPWorkers()
	bc := udpbatch.NewConn(pc)
	w := &udpWriter{conn: bc, logger: s.logger()}
	batch := s.udpBatch()
	pkts := make([]udpbatch.Packet, batch)
	bufs := make([]*[]byte, batch)
	release := func() {
		for i, bp := range bufs {
			if bp != nil {
				bufpool.Put(bp)
				bufs[i] = nil
			}
		}
	}
	s.udpLoops.Add(1)
	defer s.udpLoops.Done()
	defer release()
	for {
		for i := range pkts {
			if bufs[i] == nil {
				bufs[i] = bufpool.GetN(maxUDPDatagram)
			}
			pkts[i].Buf = (*bufs[i])[:maxUDPDatagram]
			pkts[i].Addr = nil
		}
		n, err := bc.ReadBatch(pkts)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		for i := 0; i < n; i++ {
			bp := bufs[i]
			*bp = pkts[i].Buf // sliced to the datagram read
			bufs[i] = nil     // ownership moves to the job
			workerQueueDepth.Inc()
			s.jobs <- udpJob{w: w, bp: bp, addr: pkts[i].Addr}
		}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// udpWorker drains the job channel with per-worker reusable parse state:
// one pooled Message whose decoder arenas are recycled across every
// packet this worker handles.
func (s *Server) udpWorker() {
	defer s.workerWG.Done()
	defer workerCount.Dec()
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	for job := range s.jobs {
		workerQueueDepth.Dec()
		s.serveUDPPacket(job, query)
	}
}

// serveUDPPacket handles one datagram end to end: parse (into the
// worker's reusable message), try the handler's wire-template fast path
// (ResponseAppender) straight into a pooled send buffer, otherwise
// dispatch ServeDNS and pack. The packet buffer returns to the pool once
// neither the parser nor the fast path (which echoes the raw question
// bytes from it) needs it — handlers retain only interned name strings
// from the query, never the raw bytes.
func (s *Server) serveUDPPacket(job udpJob, query *dnswire.Message) {
	if err := query.Unpack(*job.bp); err != nil {
		bufpool.Put(job.bp)
		serverMalformed.Inc()
		s.logger().Debug("dropping malformed UDP query", "from", job.addr, "err", err)
		return
	}
	// Respect the client's advertised EDNS buffer, defaulting to 512.
	limit := s.MaxUDPResponse
	if limit == 0 {
		limit = dnswire.MaxUDPSize
	}
	if opt, ok := query.EDNS(); ok && int(opt.UDPSize) > limit {
		limit = int(opt.UDPSize)
	}
	out := bufpool.Get()
	if wire, ok := s.tryAppendResponse((*out)[:0], query, *job.bp); ok {
		bufpool.Put(job.bp)
		if len(wire) > limit {
			// A template response is header + question + answers; dropping
			// the answers and setting TC is the truncateTo equivalent. The
			// question in wire is our own uncompressed echo, so its length
			// re-derives cheaply on this rare path.
			if rawQ, ok := dnswire.QuestionBytes(wire); ok {
				wire = dnswire.TruncateToQuestion(wire, len(rawQ))
			} else {
				bufpool.Put(out)
				return
			}
		}
		*out = wire
		job.w.enqueue(out, job.addr)
		return
	}
	bufpool.Put(job.bp)
	resp := s.respond(query)
	wire, err := resp.AppendPack((*out)[:0])
	if err != nil {
		bufpool.Put(out)
		s.logger().Warn("packing response", "err", err)
		return
	}
	*out = wire
	if len(wire) > limit {
		wire, err = truncateTo(resp, limit, wire[:0])
		if err != nil || len(wire) > limit {
			bufpool.Put(out)
			return
		}
		*out = wire
	}
	job.w.enqueue(out, job.addr)
}

// tryAppendResponse runs the ResponseAppender fast path when the handler
// offers it and the request's question can be echoed verbatim. On
// success it records the same request/latency instruments respond does;
// on decline it records nothing, since the query is about to be
// dispatched (and counted) through respond.
func (s *Server) tryAppendResponse(dst []byte, query *dnswire.Message, raw []byte) ([]byte, bool) {
	ra, ok := s.Handler.(ResponseAppender)
	if !ok {
		return dst, false
	}
	rawQ, ok := dnswire.QuestionBytes(raw)
	if !ok {
		return dst, false
	}
	start := time.Now()
	out, _, ok := ra.AppendResponse(dst, query, rawQ)
	if !ok {
		return dst, false
	}
	serverRequests.Inc()
	serverLatency.ObserveDuration(time.Since(start))
	return out, true
}

// outPacket is one packed response awaiting a batched write.
type outPacket struct {
	bp   *[]byte
	addr net.Addr
}

// udpWriter batches responses back to a socket with flush combining: the
// first worker to enqueue onto an idle writer becomes the flusher and
// keeps writing until the pending queue is empty, while other workers
// just append and return. Under load, responses accumulating during the
// flusher's WriteBatch syscall form the next batch automatically; under
// light load every response flushes immediately, adding no latency. No
// dedicated goroutine, so there is no writer lifecycle to manage when a
// socket closes mid-flight.
type udpWriter struct {
	conn   udpbatch.Conn
	logger *obs.Logger

	mu       sync.Mutex
	pend     []outPacket
	spare    []outPacket // recycled backing array for pend
	flushing bool
	scratch  []udpbatch.Packet // flusher-owned WriteBatch argument
}

func (w *udpWriter) enqueue(bp *[]byte, addr net.Addr) {
	w.mu.Lock()
	w.pend = append(w.pend, outPacket{bp: bp, addr: addr})
	if w.flushing {
		w.mu.Unlock()
		return
	}
	w.flushing = true
	for len(w.pend) > 0 {
		batch := w.pend
		w.pend = w.spare[:0]
		w.mu.Unlock()

		w.scratch = w.scratch[:0]
		for _, p := range batch {
			w.scratch = append(w.scratch, udpbatch.Packet{Buf: *p.bp, Addr: p.addr})
		}
		if _, err := w.conn.WriteBatch(w.scratch); err != nil {
			w.logger.Debug("writing UDP responses", "err", err)
		}
		for _, p := range batch {
			bufpool.Put(p.bp)
		}

		w.mu.Lock()
		w.spare = batch[:0]
	}
	w.flushing = false
	w.mu.Unlock()
}

// truncateTo re-packs resp into buf with answers removed and TC set so it
// fits within limit.
func truncateTo(resp *dnswire.Message, limit int, buf []byte) ([]byte, error) {
	tr := *resp
	tr.Header.TC = true
	tr.Answers = nil
	tr.Authority = nil
	tr.Additional = nil
	return tr.AppendPack(buf)
}

// ServeTCP answers queries on connections accepted from ln until it is
// closed. Each connection may carry multiple length-prefixed queries.
func (s *Server) ServeTCP(ln net.Listener) error {
	if !s.track(nil, ln, nil) {
		ln.Close()
		return errors.New("dns53: server closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(nil, nil, conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one stream connection (TCP or, via internal/dot, TLS).
// The read buffer, frame buffer, and parsed query message are reused for
// every query on the connection, so a busy stream allocates nothing per
// exchange.
func (s *Server) serveConn(conn net.Conn) {
	in, out := bufpool.Get(), bufpool.Get()
	defer bufpool.Put(in)
	defer bufpool.Put(out)
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		pkt, err := readTCPMsgInto(conn, (*in)[:0])
		if err != nil {
			return // EOF, timeout, or peer reset: stream is done either way
		}
		*in = pkt
		if err := query.Unpack(pkt); err != nil {
			serverMalformed.Inc()
			s.logger().Debug("dropping malformed TCP query", "err", err)
			return
		}
		// Wire-template fast path, packed straight behind the RFC 1035
		// §4.2.2 two-octet length prefix (compression offsets are message-
		// start-relative, so the prefix does not disturb them). No stream
		// truncation concerns: templates never exceed MaxMessageSize.
		if frame, ok := s.tryAppendResponse(append((*out)[:0], 0, 0), query, pkt); ok {
			*out = frame
			binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
			if _, err := conn.Write(frame); err != nil {
				return
			}
			continue
		}
		// Pack straight behind the length prefix: one buffer, one write,
		// no copy.
		frame, err := s.respond(query).AppendPack(append((*out)[:0], 0, 0))
		if err != nil {
			s.logger().Warn("packing response", "err", err)
			return
		}
		*out = frame
		if len(frame)-2 > dnswire.MaxMessageSize {
			s.logger().Warn("packing response", "err", dnswire.ErrMessageTooLarge)
			return
		}
		binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

// ServeStream exposes serveConn for transports (DoT) that bring their own
// connection establishment but reuse the RFC 1035 framing and dispatch.
func (s *Server) ServeStream(conn net.Conn) {
	if !s.track(nil, nil, conn) {
		conn.Close()
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	s.serveConn(conn)
}

// respond runs the handler with panic and error containment, recording
// the request count and handler latency.
func (s *Server) respond(query *dnswire.Message) *dnswire.Message {
	serverRequests.Inc()
	start := time.Now()
	resp, err := func() (m *dnswire.Message, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.logger().Error("handler panic", "panic", r)
				m, err = nil, errors.New("handler panic")
			}
		}()
		return s.Handler.ServeDNS(context.Background(), query)
	}()
	serverLatency.ObserveDuration(time.Since(start))
	if err != nil || resp == nil {
		serverFailures.Inc()
		if err != nil {
			s.logger().Warn("handler failed", "q", query.Question0().Name, "err", err)
		}
		return servfail(query)
	}
	return resp
}

// Respond answers a single already-parsed query using the server's handler
// and containment; the DoH transport calls this directly since HTTP does
// its own framing.
func (s *Server) Respond(query *dnswire.Message) *dnswire.Message {
	return s.respond(query)
}
