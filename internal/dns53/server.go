package dns53

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Server-side instruments shared by every frontend that dispatches
// through respond (Do53 UDP/TCP, DoT via ServeStream, DoH via Respond).
var (
	serverRequests = obs.Default().Counter("dns53_server_requests_total",
		"Queries dispatched to the server's handler.")
	serverFailures = obs.Default().Counter("dns53_server_failures_total",
		"Handler errors, panics, and nil responses (answered SERVFAIL).")
	serverLatency = obs.Default().Histogram("dns53_server_seconds",
		"Handler latency per dispatched query.", nil)
	serverMalformed = obs.Default().Counter("dns53_server_malformed_total",
		"Dropped queries that failed wire parsing.")
)

// Server serves DNS over UDP and TCP. Configure Handler, then pass
// listeners to ServeUDP/ServeTCP (each blocks; run them in goroutines) and
// call Shutdown to stop. The zero value is not usable; populate Handler.
type Server struct {
	Handler Handler
	// Logger receives malformed-packet and handler-failure notices; nil
	// discards them (the obs.Logger convention: quiet by default).
	Logger *obs.Logger
	// ReadTimeout bounds each TCP read; zero means 10 seconds.
	ReadTimeout time.Duration
	// MaxUDPResponse truncates UDP responses longer than this (TC bit set);
	// zero means dnswire.MaxUDPSize, raised per-query by EDNS.
	MaxUDPResponse int

	mu       sync.Mutex
	closed   bool
	udpConns []net.PacketConn
	tcpLns   []net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// logger returns the configured logger; a nil *obs.Logger discards, so
// no fallback construction is needed.
func (s *Server) logger() *obs.Logger { return s.Logger }

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 10 * time.Second
}

// track registers a listener or conn for Shutdown. It reports false when
// the server is already closed.
func (s *Server) track(pc net.PacketConn, ln net.Listener, c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	switch {
	case pc != nil:
		s.udpConns = append(s.udpConns, pc)
	case ln != nil:
		s.tcpLns = append(s.tcpLns, ln)
	case c != nil:
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown closes all listeners and connections and waits for in-flight
// handlers to finish.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for _, pc := range s.udpConns {
		pc.Close()
	}
	for _, ln := range s.tcpLns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeUDP answers queries arriving on pc until the connection is closed.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	if !s.track(pc, nil, nil) {
		pc.Close()
		return errors.New("dns53: server closed")
	}
	buf := make([]byte, 64*1024)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		// Hand the packet to the worker in a pooled buffer; the worker
		// returns it once the response is on the wire.
		bp := bufpool.Get()
		pkt := append((*bp)[:0], buf[:n]...)
		*bp = pkt
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer bufpool.Put(bp)
			s.handleUDP(pc, from, pkt)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) handleUDP(pc net.PacketConn, from net.Addr, pkt []byte) {
	// The query is parsed into a pooled message: its records and strings
	// are recycled once the response has been written (handlers hand back
	// fresh responses; the only query data they retain are interned name
	// strings, which stay valid forever).
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	if err := query.Unpack(pkt); err != nil {
		serverMalformed.Inc()
		s.logger().Debug("dropping malformed UDP query", "from", from, "err", err)
		return
	}
	resp := s.respond(query)
	// Respect the client's advertised EDNS buffer, defaulting to 512.
	limit := s.MaxUDPResponse
	if limit == 0 {
		limit = dnswire.MaxUDPSize
	}
	if opt, ok := query.EDNS(); ok && int(opt.UDPSize) > limit {
		limit = int(opt.UDPSize)
	}
	out := bufpool.Get()
	defer bufpool.Put(out)
	wire, err := resp.AppendPack((*out)[:0])
	if err != nil {
		s.logger().Warn("packing response", "err", err)
		return
	}
	*out = wire
	if len(wire) > limit {
		wire, err = truncateTo(resp, limit, wire[:0])
		if err != nil || len(wire) > limit {
			return
		}
		*out = wire
	}
	if _, err := pc.WriteTo(wire, from); err != nil {
		s.logger().Debug("writing UDP response", "from", from, "err", err)
	}
}

// truncateTo re-packs resp into buf with answers removed and TC set so it
// fits within limit.
func truncateTo(resp *dnswire.Message, limit int, buf []byte) ([]byte, error) {
	tr := *resp
	tr.Header.TC = true
	tr.Answers = nil
	tr.Authority = nil
	tr.Additional = nil
	return tr.AppendPack(buf)
}

// ServeTCP answers queries on connections accepted from ln until it is
// closed. Each connection may carry multiple length-prefixed queries.
func (s *Server) ServeTCP(ln net.Listener) error {
	if !s.track(nil, ln, nil) {
		ln.Close()
		return errors.New("dns53: server closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(nil, nil, conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one stream connection (TCP or, via internal/dot, TLS).
// The read buffer, frame buffer, and parsed query message are reused for
// every query on the connection, so a busy stream allocates nothing per
// exchange.
func (s *Server) serveConn(conn net.Conn) {
	in, out := bufpool.Get(), bufpool.Get()
	defer bufpool.Put(in)
	defer bufpool.Put(out)
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		pkt, err := readTCPMsgInto(conn, (*in)[:0])
		if err != nil {
			return // EOF, timeout, or peer reset: stream is done either way
		}
		*in = pkt
		if err := query.Unpack(pkt); err != nil {
			serverMalformed.Inc()
			s.logger().Debug("dropping malformed TCP query", "err", err)
			return
		}
		// Pack straight behind the RFC 1035 §4.2.2 two-octet length
		// prefix: one buffer, one write, no copy.
		frame, err := s.respond(query).AppendPack(append((*out)[:0], 0, 0))
		if err != nil {
			s.logger().Warn("packing response", "err", err)
			return
		}
		*out = frame
		if len(frame)-2 > dnswire.MaxMessageSize {
			s.logger().Warn("packing response", "err", dnswire.ErrMessageTooLarge)
			return
		}
		binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

// ServeStream exposes serveConn for transports (DoT) that bring their own
// connection establishment but reuse the RFC 1035 framing and dispatch.
func (s *Server) ServeStream(conn net.Conn) {
	if !s.track(nil, nil, conn) {
		conn.Close()
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	s.serveConn(conn)
}

// respond runs the handler with panic and error containment, recording
// the request count and handler latency.
func (s *Server) respond(query *dnswire.Message) *dnswire.Message {
	serverRequests.Inc()
	start := time.Now()
	resp, err := func() (m *dnswire.Message, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.logger().Error("handler panic", "panic", r)
				m, err = nil, errors.New("handler panic")
			}
		}()
		return s.Handler.ServeDNS(context.Background(), query)
	}()
	serverLatency.ObserveDuration(time.Since(start))
	if err != nil || resp == nil {
		serverFailures.Inc()
		if err != nil {
			s.logger().Warn("handler failed", "q", query.Question0().Name, "err", err)
		}
		return servfail(query)
	}
	return resp
}

// Respond answers a single already-parsed query using the server's handler
// and containment; the DoH transport calls this directly since HTTP does
// its own framing.
func (s *Server) Respond(query *dnswire.Message) *dnswire.Message {
	return s.respond(query)
}
