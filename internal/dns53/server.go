package dns53

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Server-side instruments shared by every frontend that dispatches
// through respond (Do53 UDP/TCP, DoT via ServeStream, DoH via Respond).
var (
	serverRequests = obs.Default().Counter("dns53_server_requests_total",
		"Queries dispatched to the server's handler.")
	serverFailures = obs.Default().Counter("dns53_server_failures_total",
		"Handler errors, panics, and nil responses (answered SERVFAIL).")
	serverLatency = obs.Default().Histogram("dns53_server_seconds",
		"Handler latency per dispatched query.", nil)
	serverMalformed = obs.Default().Counter("dns53_server_malformed_total",
		"Dropped queries that failed wire parsing.")
)

// Server serves DNS over UDP and TCP. Configure Handler, then pass
// listeners to ServeUDP/ServeTCP (each blocks; run them in goroutines) and
// call Shutdown to stop. The zero value is not usable; populate Handler.
type Server struct {
	Handler Handler
	// Logger receives malformed-packet and handler-failure notices; nil
	// discards them (the obs.Logger convention: quiet by default).
	Logger *obs.Logger
	// ReadTimeout bounds each TCP read; zero means 10 seconds.
	ReadTimeout time.Duration
	// MaxUDPResponse truncates UDP responses longer than this (TC bit set);
	// zero means dnswire.MaxUDPSize, raised per-query by EDNS.
	MaxUDPResponse int

	mu       sync.Mutex
	closed   bool
	udpConns []net.PacketConn
	tcpLns   []net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// logger returns the configured logger; a nil *obs.Logger discards, so
// no fallback construction is needed.
func (s *Server) logger() *obs.Logger { return s.Logger }

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 10 * time.Second
}

// track registers a listener or conn for Shutdown. It reports false when
// the server is already closed.
func (s *Server) track(pc net.PacketConn, ln net.Listener, c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	switch {
	case pc != nil:
		s.udpConns = append(s.udpConns, pc)
	case ln != nil:
		s.tcpLns = append(s.tcpLns, ln)
	case c != nil:
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown closes all listeners and connections and waits for in-flight
// handlers to finish.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for _, pc := range s.udpConns {
		pc.Close()
	}
	for _, ln := range s.tcpLns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeUDP answers queries arriving on pc until the connection is closed.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	if !s.track(pc, nil, nil) {
		pc.Close()
		return errors.New("dns53: server closed")
	}
	buf := make([]byte, 64*1024)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleUDP(pc, from, pkt)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) handleUDP(pc net.PacketConn, from net.Addr, pkt []byte) {
	query, err := dnswire.Unpack(pkt)
	if err != nil {
		serverMalformed.Inc()
		s.logger().Debug("dropping malformed UDP query", "from", from, "err", err)
		return
	}
	resp := s.respond(query)
	// Respect the client's advertised EDNS buffer, defaulting to 512.
	limit := s.MaxUDPResponse
	if limit == 0 {
		limit = dnswire.MaxUDPSize
	}
	if opt, ok := query.EDNS(); ok && int(opt.UDPSize) > limit {
		limit = int(opt.UDPSize)
	}
	wire, err := resp.Pack()
	if err != nil {
		s.logger().Warn("packing response", "err", err)
		return
	}
	if len(wire) > limit {
		wire = truncateTo(resp, limit)
		if wire == nil {
			return
		}
	}
	if _, err := pc.WriteTo(wire, from); err != nil {
		s.logger().Debug("writing UDP response", "from", from, "err", err)
	}
}

// truncateTo re-packs resp with answers removed and TC set so it fits.
func truncateTo(resp *dnswire.Message, limit int) []byte {
	tr := *resp
	tr.Header.TC = true
	tr.Answers = nil
	tr.Authority = nil
	tr.Additional = nil
	wire, err := tr.Pack()
	if err != nil || len(wire) > limit {
		return nil
	}
	return wire
}

// ServeTCP answers queries on connections accepted from ln until it is
// closed. Each connection may carry multiple length-prefixed queries.
func (s *Server) ServeTCP(ln net.Listener) error {
	if !s.track(nil, ln, nil) {
		ln.Close()
		return errors.New("dns53: server closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(nil, nil, conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one stream connection (TCP or, via internal/dot, TLS).
func (s *Server) serveConn(conn net.Conn) {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		pkt, err := ReadTCPMsg(conn)
		if err != nil {
			return // EOF, timeout, or peer reset: stream is done either way
		}
		query, err := dnswire.Unpack(pkt)
		if err != nil {
			serverMalformed.Inc()
			s.logger().Debug("dropping malformed TCP query", "err", err)
			return
		}
		wire, err := s.respond(query).Pack()
		if err != nil {
			s.logger().Warn("packing response", "err", err)
			return
		}
		if err := WriteTCPMsg(conn, wire); err != nil {
			return
		}
	}
}

// ServeStream exposes serveConn for transports (DoT) that bring their own
// connection establishment but reuse the RFC 1035 framing and dispatch.
func (s *Server) ServeStream(conn net.Conn) {
	if !s.track(nil, nil, conn) {
		conn.Close()
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	s.serveConn(conn)
}

// respond runs the handler with panic and error containment, recording
// the request count and handler latency.
func (s *Server) respond(query *dnswire.Message) *dnswire.Message {
	serverRequests.Inc()
	start := time.Now()
	resp, err := func() (m *dnswire.Message, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.logger().Error("handler panic", "panic", r)
				m, err = nil, errors.New("handler panic")
			}
		}()
		return s.Handler.ServeDNS(context.Background(), query)
	}()
	serverLatency.ObserveDuration(time.Since(start))
	if err != nil || resp == nil {
		serverFailures.Inc()
		if err != nil {
			s.logger().Warn("handler failed", "q", query.Question0().Name, "err", err)
		}
		return servfail(query)
	}
	return resp
}

// Respond answers a single already-parsed query using the server's handler
// and containment; the DoH transport calls this directly since HTTP does
// its own framing.
func (s *Server) Respond(query *dnswire.Message) *dnswire.Message {
	return s.respond(query)
}
