// End-to-end coverage of the wire-template fast path through the real
// server frontends. This is an external test package: the cache-backed
// handlers live in internal/resolver, which depends on internal/transport
// and therefore (indirectly) on dns53 itself, so an in-package test would
// form an import cycle.
package dns53_test

import (
	"bytes"
	"encoding/binary"
	"net"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/resolver"
)

// warmForwarder returns a cache-backed handler holding one A RRset for
// www.example.com. — a Forwarder with no upstreams, so any fallback past
// the cache fails loudly rather than silently resolving.
func warmForwarder() *resolver.Forwarder {
	c := resolver.NewCache(256, nil)
	c.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{{
		Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}})
	return &resolver.Forwarder{Cache: c}
}

// mixedCaseQuery packs an A query and rewrites its question labels to
// WwW.eXaMpLe alternating case, returning the wire and the byte range of
// the question section.
func mixedCaseQuery(t *testing.T, id uint16) (wire []byte, question []byte) {
	t.Helper()
	q := dnswire.NewQuery(id, "www.example.com.", dnswire.TypeA)
	wire, err := q.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	upper := false
	off := 12
	for wire[off] != 0 {
		n := int(wire[off])
		off++
		for i := 0; i < n; i++ {
			if c := wire[off+i]; c >= 'a' && c <= 'z' && upper {
				wire[off+i] = c - 'a' + 'A'
			}
			upper = !upper
		}
		off += n
	}
	return wire, wire[12 : off+5]
}

// checkTemplateResponse asserts resp is the template-served answer for
// the mixed-case query: same ID, the question echoed byte-for-byte in
// the client's spelling (the materialize path would re-pack it
// lowercase), and the cached A record present.
func checkTemplateResponse(t *testing.T, resp []byte, id uint16, question []byte) {
	t.Helper()
	if len(resp) < 12+len(question) {
		t.Fatalf("short response: %d bytes", len(resp))
	}
	if got := binary.BigEndian.Uint16(resp); got != id {
		t.Fatalf("response ID = %d, want %d", got, id)
	}
	if got := resp[12 : 12+len(question)]; !bytes.Equal(got, question) {
		t.Fatalf("question not echoed in client case:\n got %x\nwant %x", got, question)
	}
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatalf("response does not parse: %v", err)
	}
	if m.Header.RCode != dnswire.RCodeSuccess || len(m.Answers) != 1 {
		t.Fatalf("rcode=%v answers=%d", m.Header.RCode, len(m.Answers))
	}
	if a, ok := m.Answers[0].Data.(*dnswire.A); !ok || a.Addr.String() != "192.0.2.1" {
		t.Fatalf("answer = %v", m.Answers[0])
	}
}

// TestTemplateServedOverUDP drives the full UDP pipeline — batched
// receive, worker dispatch, template append into the batch writer — with
// a raw socket so the mixed-case question bytes survive untouched.
func TestTemplateServedOverUDP(t *testing.T) {
	srv := &dns53.Server{Handler: warmForwarder()}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(srv.Shutdown)

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, question := mixedCaseQuery(t, 0x1234)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkTemplateResponse(t, buf[:n], 0x1234, question)
}

// TestTemplateServedOverTCP drives the stream path (shared by DoT via
// ServeStream): the template packs straight behind the two-octet length
// prefix.
func TestTemplateServedOverTCP(t *testing.T) {
	srv := &dns53.Server{Handler: warmForwarder()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(ln)
	t.Cleanup(srv.Shutdown)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire, question := mixedCaseQuery(t, 0x4321)
	frame := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(frame, uint16(len(wire)))
	copy(frame[2:], wire)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [2]byte
	if _, err := readFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := readFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	checkTemplateResponse(t, resp, 0x4321, question)
}

func readFull(conn net.Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := conn.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestTemplateUDPTruncation forces a template response over the UDP
// limit: the server must shrink it to header+question with TC set, and
// the client's spelling still echoes.
func TestTemplateUDPTruncation(t *testing.T) {
	f := warmForwarder()
	var rrs []dnswire.Record
	for i := 0; i < 40; i++ {
		rrs = append(rrs, dnswire.Record{
			Name: "big.example.com.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
			TTL: 300, Data: &dnswire.TXT{Strings: []string{string(make([]byte, 40))}}})
	}
	f.Cache.PutRRset("big.example.com.", dnswire.TypeTXT, rrs)

	srv := &dns53.Server{Handler: f}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(srv.Shutdown)

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(5, "big.example.com.", dnswire.TypeTXT)
	wire, err := q.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > dnswire.MaxUDPSize {
		t.Fatalf("truncated response still %d bytes", n)
	}
	m, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.TC || len(m.Answers) != 0 {
		t.Fatalf("TC=%v answers=%d, want truncated empty answer", m.Header.TC, len(m.Answers))
	}
}
