package netsim

import (
	"context"
	"fmt"
	"net"
	"sync"
	"syscall"

	"encdns/internal/dialer"
)

// This file is netsim's byte-level companion to the transaction-level
// model above: a VirtualNet of in-process pipe connections with
// middlebox models on the path. The transaction model answers "how long
// does a query take from this vantage"; the VirtualNet answers "do the
// actual bytes of a real TLS handshake survive this vantage's
// middleboxes" — which is the reachability axis the dialer chains exist
// to measure. Real protocol code (crypto/tls, internal/dot, internal/doh)
// runs unmodified over VirtualNet paths, so evasion results are proofs
// about the real client stack, in deterministic in-process time.

// Verdict is a middlebox's decision about one client→server segment.
type Verdict int

// Middlebox verdicts. Pass forwards the segment, Drop silently discards
// it (the classic stateless-firewall failure mode: the connection
// strands until the client gives up), Reset tears the connection down
// with ECONNRESET in both directions (the classic injected-RST censor).
const (
	VerdictPass Verdict = iota
	VerdictDrop
	VerdictReset
)

// Middlebox is a named on-path interference model.
type Middlebox interface {
	// Name labels the middlebox in vantage definitions and reports.
	Name() string
}

// SegmentInspector is a middlebox that inspects client→server segments.
// index counts segments from 0; each Write through the path is one
// segment, mirroring fast-path DPI that classifies per-packet without
// stream reassembly.
type SegmentInspector interface {
	Middlebox
	Inspect(index int, segment []byte) Verdict
}

// DialFilter is a middlebox that acts at connection establishment, before
// any bytes flow. Implementations may block until ctx is done to model
// silent blackholing.
type DialFilter interface {
	Middlebox
	FilterDial(ctx context.Context, network, address string) error
}

// RSTOnSNI injects a connection reset when any single segment carries a
// complete TLS ClientHello whose SNI matches a blocked name. This is the
// single-segment SNI filter deployed at national scale: it never
// reassembles records, so record fragmentation (tlsfrag) and stream
// splitting (split) walk straight past it.
type RSTOnSNI struct {
	// Blocked lists the exact SNI values that trigger the reset.
	Blocked []string
}

// Name implements Middlebox.
func (m *RSTOnSNI) Name() string { return "rst-on-sni" }

// Inspect implements SegmentInspector.
func (m *RSTOnSNI) Inspect(_ int, segment []byte) Verdict {
	sni, ok := dialer.ParseSNI(segment)
	if !ok {
		return VerdictPass
	}
	for _, b := range m.Blocked {
		if sni == b {
			return VerdictReset
		}
	}
	return VerdictPass
}

// DropLargeRecord silently drops the connection's first segment when it
// opens a TLS record longer than MaxBytes — a model of middleboxes that
// choke on large ClientHellos (post-quantum keyshares made this failure
// real). Only the first segment is inspected; that shortcut is exactly
// why a fragmented ClientHello (small first record) slips through.
type DropLargeRecord struct {
	// MaxBytes is the largest first-record size (header included) that
	// passes.
	MaxBytes int
}

// Name implements Middlebox.
func (m *DropLargeRecord) Name() string { return "drop-large-record" }

// Inspect implements SegmentInspector.
func (m *DropLargeRecord) Inspect(index int, segment []byte) Verdict {
	if index != 0 {
		return VerdictPass
	}
	if n, ok := dialer.FirstRecordLen(segment); ok && n > m.MaxBytes {
		return VerdictDrop
	}
	return VerdictPass
}

// ThrottleFamily blackholes connection establishment for one address
// family ("ipv4" or "ipv6"): dials to that family hang until the
// caller's context expires, the way a broken 6to4 path or a null-routed
// prefix behaves. Happy-eyeballs racing exists to make this failure cost
// one stagger interval instead of a full timeout.
type ThrottleFamily struct {
	// Family is the address family to strand ("ipv4" or "ipv6").
	Family string
}

// Name implements Middlebox.
func (m *ThrottleFamily) Name() string { return "throttle-" + m.Family }

// FilterDial implements DialFilter.
func (m *ThrottleFamily) FilterDial(ctx context.Context, _ string, address string) error {
	host, _, err := net.SplitHostPort(address)
	if err != nil {
		host = address
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return nil // hostname dials pass; filtering keys on literal family
	}
	fam := "ipv6"
	if ip.To4() != nil {
		fam = "ipv4"
	}
	if fam != m.Family {
		return nil
	}
	<-ctx.Done()
	return &net.OpError{Op: "dial", Net: "tcp", Err: ctx.Err()}
}

// Blackhole strands every dial until the caller's context expires —
// the fully unreachable vantage/endpoint pair.
type Blackhole struct{}

// Name implements Middlebox.
func (m *Blackhole) Name() string { return "blackhole" }

// FilterDial implements DialFilter.
func (m *Blackhole) FilterDial(ctx context.Context, _, _ string) error {
	<-ctx.Done()
	return &net.OpError{Op: "dial", Net: "tcp", Err: ctx.Err()}
}

// VirtualNet is an in-process network: servers Listen on virtual
// addresses, clients reach them through Path dialers that run the bytes
// past middlebox models. No sockets, no timers beyond the caller's
// context — outcomes depend only on the bytes written, so evasion tests
// are deterministic.
type VirtualNet struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
}

// NewVirtualNet creates an empty virtual network.
func NewVirtualNet() *VirtualNet {
	return &VirtualNet{listeners: make(map[string]*pipeListener)}
}

// Listen registers a server at the given "host:port" address and returns
// its listener. The address is matched exactly against dial targets.
func (vn *VirtualNet) Listen(addr string) (net.Listener, error) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	if _, dup := vn.listeners[addr]; dup {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &pipeListener{vn: vn, addr: addr, conns: make(chan net.Conn), done: make(chan struct{})}
	vn.listeners[addr] = l
	return l, nil
}

// Path returns a ContextDialer (the shape dialer chains and protocol
// clients accept) that reaches this VirtualNet's listeners through the
// given middleboxes. DialFilters run at establishment; SegmentInspectors
// see every client→server write.
func (vn *VirtualNet) Path(mbs ...Middlebox) *PathDialer {
	return &PathDialer{vn: vn, mbs: mbs}
}

// PathDialer dials VirtualNet listeners through a middlebox pipeline.
// It implements dialer.ContextDialer.
type PathDialer struct {
	vn  *VirtualNet
	mbs []Middlebox
}

// DialContext implements the net.Dialer-shaped dial used across the repo.
func (p *PathDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	for _, mb := range p.mbs {
		if f, ok := mb.(DialFilter); ok {
			if err := f.FilterDial(ctx, network, address); err != nil {
				return nil, err
			}
		}
	}
	p.vn.mu.Lock()
	l := p.vn.listeners[address]
	p.vn.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: network,
			Err: fmt.Errorf("netsim: no listener at %s", address)}
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
	case <-l.done:
		client.Close()
		server.Close()
		return nil, &net.OpError{Op: "dial", Net: network, Err: syscall.ECONNREFUSED}
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
	var inspectors []SegmentInspector
	for _, mb := range p.mbs {
		if si, ok := mb.(SegmentInspector); ok {
			inspectors = append(inspectors, si)
		}
	}
	if len(inspectors) == 0 {
		return client, nil
	}
	return &dpiConn{Conn: client, server: server, mbs: inspectors}, nil
}

// pipeListener hands dialed pipe ends to Accept.
type pipeListener struct {
	vn    *VirtualNet
	addr  string
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

// Accept implements net.Listener.
func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "netsim", Err: net.ErrClosed}
	}
}

// Close implements net.Listener.
func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.vn.mu.Lock()
		delete(l.vn.listeners, l.addr)
		l.vn.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *pipeListener) Addr() net.Addr { return virtAddr(l.addr) }

type virtAddr string

func (a virtAddr) Network() string { return "netsim" }
func (a virtAddr) String() string  { return string(a) }

// dpiConn is the client end of a middleboxed path: every Write is one
// inspected segment.
type dpiConn struct {
	net.Conn
	server net.Conn
	mbs    []SegmentInspector

	mu    sync.Mutex
	index int
	reset bool
}

// errReset is what an injected RST looks like to the client stack.
func errReset(op string) error {
	return &net.OpError{Op: op, Net: "tcp", Err: syscall.ECONNRESET}
}

func (c *dpiConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, errReset("write")
	}
	idx := c.index
	c.index++
	verdict := VerdictPass
	for _, mb := range c.mbs {
		if v := mb.Inspect(idx, b); v > verdict {
			verdict = v
		}
	}
	switch verdict {
	case VerdictDrop:
		c.mu.Unlock()
		// Swallowed on the wire: the sender believes it went out.
		return len(b), nil
	case VerdictReset:
		c.reset = true
		c.mu.Unlock()
		// Tear down both directions, like an injected RST pair.
		c.server.Close()
		c.Conn.Close()
		return 0, errReset("write")
	}
	c.mu.Unlock()
	return c.Conn.Write(b)
}

func (c *dpiConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, errReset("read")
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(b)
	if err != nil {
		c.mu.Lock()
		wasReset := c.reset
		c.mu.Unlock()
		if wasReset {
			return n, errReset("read")
		}
	}
	return n, err
}
