package netsim

import (
	"testing"
	"time"

	"encdns/internal/geo"
)

// paperClasses mirrors the paper's vantage mix: home broadband in
// Chicago plus EC2 datacenter vantages in Ohio, Frankfurt, and Seoul
// (§3.2), weighted so most clients sit in the two US classes.
func paperClasses() []CatchmentClass {
	return []CatchmentClass{
		{Vantage: Vantage{Name: "chicago-home", Coord: geo.Chicago, Access: AccessHome}, Weight: 0.4, SpreadKm: 60},
		{Vantage: Vantage{Name: "ohio-dc", Coord: geo.Ohio, Access: AccessDatacenter}, Weight: 0.25, SpreadKm: 150},
		{Vantage: Vantage{Name: "frankfurt-dc", Coord: geo.Frankfurt, Access: AccessDatacenter}, Weight: 0.2, SpreadKm: 150},
		{Vantage: Vantage{Name: "seoul-dc", Coord: geo.Seoul, Access: AccessDatacenter}, Weight: 0.15, SpreadKm: 150},
	}
}

func clusterInstances() []Instance {
	return []Instance{
		{Name: "us-chicago", Site: geo.Chicago, Healthy: true},
		{Name: "eu-frankfurt", Site: geo.Frankfurt, Healthy: true},
		{Name: "ap-seoul", Site: geo.Seoul, Healthy: true},
	}
}

func TestCatchmentDeterministic(t *testing.T) {
	m := &CatchmentModel{Net: testNet(), Classes: paperClasses()}
	a := m.Assign(20000, clusterInstances())
	b := m.Assign(20000, clusterInstances())
	if a.String() != b.String() {
		t.Fatalf("same seed, different reports:\n%s\n%s", a.String(), b.String())
	}
	if a.Clients != 20000 || a.Unserved != 0 {
		t.Fatalf("bad population accounting: %+v", a)
	}
}

func TestCatchmentFollowsGeography(t *testing.T) {
	m := &CatchmentModel{Net: testNet(), Classes: paperClasses()}
	rep := m.Assign(20000, clusterInstances())

	// US classes (65% of clients) land on Chicago, the EU class on
	// Frankfurt, the AP class on Seoul — nearest healthy site wins.
	if got := rep.Share("us-chicago"); got < 0.6 || got > 0.7 {
		t.Errorf("us-chicago share = %.3f, want ~0.65", got)
	}
	if got := rep.Share("eu-frankfurt"); got < 0.15 || got > 0.25 {
		t.Errorf("eu-frankfurt share = %.3f, want ~0.20", got)
	}
	if got := rep.Share("ap-seoul"); got < 0.10 || got > 0.20 {
		t.Errorf("ap-seoul share = %.3f, want ~0.15", got)
	}
}

// TestCatchmentSiteFailureShiftsAndDegradesTail is the cluster failover
// scenario in virtual time (the model is purely computational — zero
// wall-clock sleeps anywhere): killing the Frankfurt site must shed its
// whole catchment onto the surviving instances and drag the population
// tail latency up, because EU clients now cross an ocean.
func TestCatchmentSiteFailureShiftsAndDegradesTail(t *testing.T) {
	m := &CatchmentModel{Net: testNet(), Classes: paperClasses()}
	const clients = 50000

	before := m.Assign(clients, clusterInstances())

	after := clusterInstances()
	after[1].Healthy = false // Frankfurt down
	rep := m.Assign(clients, after)

	if rep.PerInstance["eu-frankfurt"] != 0 {
		t.Fatalf("dead site still has %d clients", rep.PerInstance["eu-frankfurt"])
	}
	if rep.Unserved != 0 {
		t.Fatalf("%d clients unserved despite surviving instances", rep.Unserved)
	}
	// The shed catchment lands somewhere: survivors together absorb
	// everything Frankfurt had.
	shed := before.PerInstance["eu-frankfurt"]
	gained := (rep.PerInstance["us-chicago"] - before.PerInstance["us-chicago"]) +
		(rep.PerInstance["ap-seoul"] - before.PerInstance["ap-seoul"])
	if gained != shed {
		t.Errorf("survivors gained %d clients, want the full shed catchment %d", gained, shed)
	}
	if shed < clients/10 {
		t.Fatalf("shed catchment %d too small for the assertion to mean anything", shed)
	}

	// Tail latency degrades: the EU fifth of the population now detours
	// transatlantically, which must show up at P95 and above while the
	// median (dominated by the untouched US majority) barely moves.
	if rep.P95 <= before.P95 {
		t.Errorf("P95 did not degrade: before %s, after %s", before.P95, rep.P95)
	}
	if rep.P99 <= before.P99 {
		t.Errorf("P99 did not degrade: before %s, after %s", before.P99, rep.P99)
	}
	if rep.P95 < before.P95+30*time.Millisecond {
		t.Errorf("P95 shift %s -> %s smaller than a transatlantic detour", before.P95, rep.P95)
	}
}

func TestCatchmentAllSitesDown(t *testing.T) {
	m := &CatchmentModel{Net: testNet(), Classes: paperClasses()}
	insts := clusterInstances()
	for i := range insts {
		insts[i].Healthy = false
	}
	rep := m.Assign(1000, insts)
	if rep.Unserved != 1000 {
		t.Errorf("unserved = %d, want 1000", rep.Unserved)
	}
}
