package netsim

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the measurement engine so campaigns can run in
// virtual time (simulation) or wall-clock time (live measurements).
type Clock interface {
	Now() time.Time
	// Advance moves virtual time forward; a wall clock ignores it (real
	// time advances on its own).
	Advance(d time.Duration)
}

// VirtualClock is a manually advanced clock. The zero value is unusable;
// use NewVirtualClock. Safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at the given instant. The campaign
// reproductions start at the paper's EC2 measurement epoch by convention.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// CampaignEpoch is the start of the paper's EC2 measurement span
// (September 19, 2023, §3.2), used as the default virtual start time.
var CampaignEpoch = time.Date(2023, time.September, 19, 0, 0, 0, 0, time.UTC)

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// NowFunc adapts a Clock to the bare func() time.Time form that
// clock-injectable components (resolver cache, infra cache) take, so a
// virtual-time harness can hand the same clock to every layer. A nil
// Clock yields nil, which those components read as time.Now.
func NowFunc(c Clock) func() time.Time {
	if c == nil {
		return nil
	}
	return c.Now
}

// WallClock is the real-time clock used by live measurements.
type WallClock struct{}

// Now returns time.Now.
func (WallClock) Now() time.Time { return time.Now() }

// Advance is a no-op; real time advances on its own.
func (WallClock) Advance(time.Duration) {}

// Sleep blocks for d or until ctx is done, returning ctx.Err in the
// latter case. Continuous campaigns use it to pace rounds in real time;
// VirtualClock deliberately has no Sleep, so virtual-time runs fall back
// to Advance and never block a test.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
