package netsim

import (
	"math"
	"testing"
	"time"

	"encdns/internal/geo"
	"encdns/internal/stats"
)

func testNet() *Net { return New(Config{Seed: 42}) }

func dcVantage(name string, c geo.Coord) Vantage {
	return Vantage{Name: name, Coord: c, Access: AccessDatacenter}
}

func goodEndpoint(name string, sites ...geo.Coord) *Endpoint {
	return &Endpoint{
		Name: name, Sites: sites, ICMPResponds: true,
		ProcMs: 2, ProcSigma: 0.3, CacheHitP: 0.95, RecurseMs: 40,
	}
}

func queryMedian(n *Net, v Vantage, e *Endpoint, p Protocol, reuse bool, rounds int) float64 {
	var samples []float64
	for r := 0; r < rounds; r++ {
		res := n.Query(v, e, p, reuse, r, "google.com")
		if res.Err == OK {
			samples = append(samples, float64(res.Duration)/float64(time.Millisecond))
		}
	}
	return stats.Median(samples)
}

func TestDeterminism(t *testing.T) {
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Fremont)
	n1, n2 := New(Config{Seed: 7}), New(Config{Seed: 7})
	for r := 0; r < 50; r++ {
		a := n1.Query(v, e, ProtoDoH, false, r, "google.com")
		b := n2.Query(v, e, ProtoDoH, false, r, "google.com")
		if a != b {
			t.Fatalf("round %d: %+v != %+v", r, a, b)
		}
	}
}

func TestSeedChangesSamples(t *testing.T) {
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Fremont)
	a := New(Config{Seed: 1}).Query(v, e, ProtoDoH, false, 0, "google.com")
	b := New(Config{Seed: 2}).Query(v, e, ProtoDoH, false, 0, "google.com")
	if a.Duration == b.Duration {
		t.Error("different seeds produced identical durations")
	}
}

func TestDistanceMonotonicity(t *testing.T) {
	// Median response time must grow with distance to a unicast endpoint.
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	near := goodEndpoint("near", geo.Ashburn)
	mid := goodEndpoint("mid", geo.Fremont)
	far := goodEndpoint("far", geo.Seoul)
	mn := queryMedian(n, v, near, ProtoDoH, false, 200)
	mm := queryMedian(n, v, mid, ProtoDoH, false, 200)
	mf := queryMedian(n, v, far, ProtoDoH, false, 200)
	if !(mn < mm && mm < mf) {
		t.Errorf("medians not monotone with distance: near=%.1f mid=%.1f far=%.1f", mn, mm, mf)
	}
}

func TestAnycastServesNearestSite(t *testing.T) {
	n := testNet()
	e := goodEndpoint("cast", geo.Ashburn, geo.Frankfurt, geo.Seoul)
	// From Seoul the anycast endpoint must perform like a local resolver.
	seoul := dcVantage("seoul", geo.Seoul)
	frankfurt := dcVantage("frankfurt", geo.Frankfurt)
	mSeoul := queryMedian(n, seoul, e, ProtoDoH, false, 200)
	mFrankfurt := queryMedian(n, frankfurt, e, ProtoDoH, false, 200)
	if mSeoul > 40 || mFrankfurt > 40 {
		t.Errorf("anycast medians too high: seoul=%.1f frankfurt=%.1f", mSeoul, mFrankfurt)
	}
	site, d := n.SiteFor(seoul, e)
	if site != geo.Seoul || d > 1 {
		t.Errorf("SiteFor(seoul) = %v at %.0f km", site, d)
	}
}

func TestUnicastIsSlowFromFarVantage(t *testing.T) {
	// The paper's core finding: a unicast resolver serves its local region
	// well and remote regions poorly.
	n := testNet()
	e := goodEndpoint("muc", geo.Frankfurt)
	local := queryMedian(n, dcVantage("frankfurt", geo.Frankfurt), e, ProtoDoH, false, 200)
	remote := queryMedian(n, dcVantage("seoul", geo.Seoul), e, ProtoDoH, false, 200)
	if remote < 3*local {
		t.Errorf("remote/local = %.1f/%.1f; expected a large factor", remote, local)
	}
}

func TestReuseFasterThanFresh(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Fremont)
	fresh := queryMedian(n, v, e, ProtoDoH, false, 200)
	reuse := queryMedian(n, v, e, ProtoDoH, true, 200)
	if reuse >= fresh {
		t.Errorf("reuse %.1f >= fresh %.1f", reuse, fresh)
	}
	// Fresh DoH is 3 round trips vs 1: ratio should be near 3 for a
	// processing-light endpoint.
	if r := fresh / reuse; r < 2 || r > 4.5 {
		t.Errorf("fresh/reuse ratio = %.2f, want ~3", r)
	}
}

func TestDo53SingleRoundTrip(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Fremont)
	udp := queryMedian(n, v, e, ProtoDo53, false, 200)
	doh := queryMedian(n, v, e, ProtoDoH, false, 200)
	if udp >= doh {
		t.Errorf("do53 %.1f >= doh %.1f", udp, doh)
	}
}

func TestTLS12CostsExtraRTT(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	modern := goodEndpoint("tls13", geo.Fremont)
	legacy := goodEndpoint("tls12", geo.Fremont)
	legacy.TLS12 = true
	m13 := queryMedian(n, v, modern, ProtoDoH, false, 300)
	m12 := queryMedian(n, v, legacy, ProtoDoH, false, 300)
	// One extra RTT on a ~51ms-RTT path.
	if m12-m13 < 25 {
		t.Errorf("TLS1.2 penalty = %.1f ms, want noticeable", m12-m13)
	}
}

func TestExtraRTTPenalty(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	plain := goodEndpoint("plain", geo.Fremont)
	odoh := goodEndpoint("odoh", geo.Fremont)
	odoh.ExtraRTT = 2
	mp := queryMedian(n, v, plain, ProtoDoH, false, 300)
	mo := queryMedian(n, v, odoh, ProtoDoH, false, 300)
	if mo <= mp {
		t.Errorf("ExtraRTT endpoint %.1f <= plain %.1f", mo, mp)
	}
}

func TestDownEndpointAlwaysConnectError(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("dead", geo.Fremont)
	e.Down = true
	for r := 0; r < 20; r++ {
		res := n.Query(v, e, ProtoDoH, false, r, "google.com")
		if res.Err != ErrConnect {
			t.Fatalf("round %d err = %v", r, res.Err)
		}
	}
	if _, ok := n.Ping(v, e, 0); ok {
		t.Error("dead endpoint answered ping")
	}
}

func TestFailureRateMatchesFailP(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("flaky", geo.Fremont)
	e.FailP = 0.2
	fails, connects := 0, 0
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		res := n.Query(v, e, ProtoDoH, false, r, "google.com")
		if res.Err != OK {
			fails++
			if res.Err == ErrConnect {
				connects++
			}
		}
	}
	rate := float64(fails) / rounds
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("failure rate = %.3f, want ~0.2", rate)
	}
	// Connection failures dominate the error mix, per the paper.
	if connects*2 < fails {
		t.Errorf("connect failures %d not dominant of %d errors", connects, fails)
	}
}

func TestFlakyWindowsAreIndependentAcrossRounds(t *testing.T) {
	// With FlakyP windows, failures should not concentrate on a fixed
	// subset of rounds when the seed changes — matching the paper's "no
	// consistent pattern" observation. Here we just check both nets see
	// windows but on different rounds.
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("windowed", geo.Fremont)
	e.FlakyP = 0.2
	badRounds := func(seed uint64) map[int]bool {
		n := New(Config{Seed: seed})
		bad := make(map[int]bool)
		for r := 0; r < 300; r++ {
			if res := n.Query(v, e, ProtoDoH, false, r, "google.com"); res.Err != OK {
				bad[r] = true
			}
		}
		return bad
	}
	a, b := badRounds(3), badRounds(4)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no flaky windows materialised")
	}
	same := 0
	for r := range a {
		if b[r] {
			same++
		}
	}
	if same == len(a) && same == len(b) {
		t.Error("flaky windows identical across seeds")
	}
}

func TestPing(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Ashburn)
	d, ok := n.Ping(v, e, 0)
	if !ok {
		t.Fatal("ping failed")
	}
	ms := float64(d) / float64(time.Millisecond)
	base := 2 * n.BaseOWDMs(v, geo.Ashburn)
	if ms < base*0.5 || ms > base*2 {
		t.Errorf("ping = %.2f ms, base RTT = %.2f ms", ms, base)
	}
	// Ping should be well below the fresh DoH response time (paper's
	// figures show ping ≪ response time).
	doh := queryMedian(n, v, e, ProtoDoH, false, 100)
	if ms >= doh {
		t.Errorf("ping %.1f >= doh %.1f", ms, doh)
	}
}

func TestPingSilentEndpoint(t *testing.T) {
	n := testNet()
	e := goodEndpoint("silent", geo.Ashburn)
	e.ICMPResponds = false
	if _, ok := n.Ping(dcVantage("ohio", geo.Ohio), e, 0); ok {
		t.Error("ICMP-silent endpoint answered")
	}
}

func TestHomeAccessSlowerAndJitterier(t *testing.T) {
	n := testNet()
	e := goodEndpoint("res", geo.Ashburn)
	home := Vantage{Name: "chi-home", Coord: geo.Chicago, Access: AccessHome}
	dc := Vantage{Name: "chi-dc", Coord: geo.Chicago, Access: AccessDatacenter}
	var homeS, dcS []float64
	for r := 0; r < 400; r++ {
		if res := n.Query(home, e, ProtoDoH, false, r, "google.com"); res.Err == OK {
			homeS = append(homeS, float64(res.Duration)/float64(time.Millisecond))
		}
		if res := n.Query(dc, e, ProtoDoH, false, r, "google.com"); res.Err == OK {
			dcS = append(dcS, float64(res.Duration)/float64(time.Millisecond))
		}
	}
	if stats.Median(homeS) <= stats.Median(dcS) {
		t.Errorf("home median %.1f <= dc median %.1f", stats.Median(homeS), stats.Median(dcS))
	}
	// Compare bulk dispersion via IQR: stddev is dominated by the rare
	// loss-retransmission spikes, which hit both access classes equally.
	homeBox, _ := stats.Summarize(homeS)
	dcBox, _ := stats.Summarize(dcS)
	if homeBox.IQR() <= dcBox.IQR() {
		t.Errorf("home IQR %.1f <= dc IQR %.1f", homeBox.IQR(), dcBox.IQR())
	}
}

func TestCacheMissesAddLatency(t *testing.T) {
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("res", geo.Ashburn)
	e.CacheHitP = 0.5
	var hits, misses []float64
	for r := 0; r < 1000; r++ {
		res := n.Query(v, e, ProtoDoH, false, r, "google.com")
		if res.Err != OK {
			continue
		}
		ms := float64(res.Duration) / float64(time.Millisecond)
		if res.CacheHit {
			hits = append(hits, ms)
		} else {
			misses = append(misses, ms)
		}
	}
	if len(hits) == 0 || len(misses) == 0 {
		t.Fatal("expected both hits and misses")
	}
	if stats.Median(misses) <= stats.Median(hits) {
		t.Errorf("miss median %.1f <= hit median %.1f", stats.Median(misses), stats.Median(hits))
	}
}

func TestQueryTimeoutClass(t *testing.T) {
	n := New(Config{Seed: 5, QueryTimeoutMs: 10})
	v := dcVantage("seoul", geo.Seoul)
	e := goodEndpoint("far", geo.Frankfurt)
	res := n.Query(v, e, ProtoDoH, false, 0, "google.com")
	if res.Err != ErrTimeout {
		t.Fatalf("err = %v, want timeout", res.Err)
	}
	if res.Duration != 10*time.Millisecond {
		t.Errorf("duration = %v, want capped at 10ms", res.Duration)
	}
}

func TestStretchInterpolation(t *testing.T) {
	n := testNet()
	c := n.Config()
	if s := n.stretch(100); s != c.IntraStretch {
		t.Errorf("near stretch = %v", s)
	}
	if s := n.stretch(20000); s != c.InterStretch {
		t.Errorf("far stretch = %v", s)
	}
	mid := n.stretch((c.StretchNearKm + c.StretchFarKm) / 2)
	want := (c.IntraStretch + c.InterStretch) / 2
	if math.Abs(mid-want) > 1e-9 {
		t.Errorf("mid stretch = %v, want %v", mid, want)
	}
}

func TestCalibrationOhioToStockholm(t *testing.T) {
	// DESIGN.md calibration: the slowest NA-group resolvers from Ohio are
	// the Sweden-hosted ODoH targets at ~270 ms median (§4). The base
	// model should land in that neighbourhood.
	n := testNet()
	v := dcVantage("ohio", geo.Ohio)
	e := goodEndpoint("odoh-se", geo.Stockholm)
	m := queryMedian(n, v, e, ProtoDoH, false, 300)
	if m < 190 || m > 350 {
		t.Errorf("Ohio→Stockholm median = %.1f ms, want ~270", m)
	}
}

func TestSiteForNoSites(t *testing.T) {
	n := testNet()
	e := &Endpoint{Name: "empty"}
	_, d := n.SiteFor(dcVantage("ohio", geo.Ohio), e)
	if !math.IsInf(d, 1) {
		t.Errorf("distance = %v, want +Inf", d)
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(CampaignEpoch)
	if !c.Now().Equal(CampaignEpoch) {
		t.Errorf("start = %v", c.Now())
	}
	c.Advance(3 * time.Hour)
	if got := c.Now().Sub(CampaignEpoch); got != 3*time.Hour {
		t.Errorf("advanced = %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now().Sub(CampaignEpoch); got != 3*time.Hour {
		t.Errorf("negative advance changed time: %v", got)
	}
}

func TestWallClock(t *testing.T) {
	var w WallClock
	before := time.Now()
	got := w.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Second)) {
		t.Errorf("wall clock far from now: %v", got)
	}
	w.Advance(time.Hour) // no-op, must not panic
}

func TestProtocolAndErrClassStrings(t *testing.T) {
	if ProtoDoH.String() != "doh" || ProtoDoT.String() != "dot" || ProtoDo53.String() != "do53" {
		t.Error("protocol names wrong")
	}
	names := map[ErrClass]string{
		OK: "ok", ErrConnect: "connect-failure", ErrTimeout: "timeout",
		ErrTLS: "tls-failure", ErrHTTP: "http-error", ErrDNS: "dns-error",
		ErrClass(99): "unknown",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if AccessHome.String() != "home" || AccessDatacenter.String() != "datacenter" {
		t.Error("access names wrong")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -13: "-13", 100000: "100000"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestNowFuncAdaptsClocks(t *testing.T) {
	if NowFunc(nil) != nil {
		t.Fatal("NowFunc(nil) must stay nil so consumers default to time.Now")
	}
	vc := NewVirtualClock(CampaignEpoch)
	now := NowFunc(vc)
	if !now().Equal(CampaignEpoch) {
		t.Fatalf("virtual NowFunc = %v, want %v", now(), CampaignEpoch)
	}
	vc.Advance(42 * time.Second)
	if got := now().Sub(CampaignEpoch); got != 42*time.Second {
		t.Fatalf("advanced NowFunc moved %v, want 42s", got)
	}
	wall := NowFunc(WallClock{})
	if d := time.Since(wall()); d < 0 || d > time.Minute {
		t.Fatalf("wall NowFunc skew %v", d)
	}
}
