// Package netsim models the global Internet that the paper's measurement
// campaign ran over: propagation delay between vantage points and resolver
// sites, anycast site selection, access-network classes (Raspberry Pis on
// home broadband vs. EC2 datacenter NICs), jitter, packet loss, resolver
// processing/cache behaviour, and the failure processes behind the paper's
// availability numbers.
//
// It is a transaction-level discrete-event model with virtual time: a DoH
// query is composed from the round trips its protocol phases cost (TCP,
// TLS, HTTP exchange) plus server processing, rather than simulated packet
// by packet. Nothing sleeps, everything is driven by seeded RNG streams
// keyed by (seed, vantage, endpoint, round, purpose), so campaigns are
// deterministic and a full paper-scale run completes in milliseconds.
//
// This package is the documented substitution for the paper's live
// measurement substrate (see DESIGN.md): the real protocol code in
// internal/doh, internal/dot, and internal/dns53 is exercised separately
// over real connections by the integration tests and by the live prober.
package netsim

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"time"

	"encdns/internal/geo"
	"encdns/internal/stats"
)

// Access classifies a vantage point's access network.
type Access int

// Access classes from the paper's two deployment sources (§3.2).
const (
	AccessDatacenter Access = iota // Amazon EC2 instance
	AccessHome                     // Raspberry Pi on home broadband
)

// String names the access class.
func (a Access) String() string {
	if a == AccessHome {
		return "home"
	}
	return "datacenter"
}

// Vantage is a measurement client location.
type Vantage struct {
	Name   string
	Coord  geo.Coord
	Access Access
}

// Endpoint is one measured resolver deployment as the network model sees
// it. The measurement dataset (internal/dataset) fills these in for the 79
// appendix resolvers.
type Endpoint struct {
	Name string
	// Sites are the deployment locations; more than one models anycast,
	// with clients routed to the nearest site.
	Sites []geo.Coord
	// ICMPResponds is false for resolvers that drop echo requests; the
	// paper shows no ping distribution for those.
	ICMPResponds bool
	// TLS12 marks endpoints still negotiating TLS 1.2, costing an extra
	// round trip during the handshake.
	TLS12 bool
	// ProcMs is the median server-side processing time for a cache-hit
	// query; ProcSigma the lognormal spread around it.
	ProcMs    float64
	ProcSigma float64
	// CacheHitP is the probability a query for the measured (popular)
	// domains is served from cache. §3.2: "it is reasonable to expect that
	// most people query sites that are already in cache".
	CacheHitP float64
	// RecurseMs is the median extra latency of a full recursive resolution
	// on a cache miss.
	RecurseMs float64
	// FailP is the per-attempt probability of failing to establish a
	// connection, the paper's dominant error class.
	FailP float64
	// FlakyP is the per-round probability that the endpoint is inside a
	// transient bad window during which connection failures dominate.
	// Windows are drawn independently per round, which reproduces the
	// paper's finding of "no consistent pattern of not receiving responses
	// from a certain subset of resolvers each time the measurements ran".
	FlakyP float64
	// ExtraRTT adds protocol round trips beyond the standard composition,
	// modelling relay indirection (the ODoH targets in the appendix) or
	// pathological middleboxes.
	ExtraRTT int
	// Down marks a permanently unresponsive endpoint.
	Down bool
}

// Anycast reports whether the endpoint has more than one site.
func (e *Endpoint) Anycast() bool { return len(e.Sites) > 1 }

// Protocol selects the query transport.
type Protocol int

// Protocols supported by the measurement tool (§3.1: "Our tool enables
// researchers to issue traditional DNS, DoT, and DoH queries").
const (
	ProtoDoH Protocol = iota
	ProtoDoT
	ProtoDo53
)

// String names the protocol as the result files spell it.
func (p Protocol) String() string {
	switch p {
	case ProtoDoT:
		return "dot"
	case ProtoDo53:
		return "do53"
	}
	return "doh"
}

// ErrClass categorises a failed query, mirroring the error taxonomy the
// availability analysis reports.
type ErrClass int

// Error classes.
const (
	OK         ErrClass = iota
	ErrConnect          // failed to establish a connection (paper: most common)
	ErrTimeout          // query exceeded the tool's deadline
	ErrTLS              // TLS negotiation failure
	ErrHTTP             // non-2xx HTTP status from a DoH endpoint
	ErrDNS              // DNS-level failure (SERVFAIL etc.)
)

// String names the error class.
func (e ErrClass) String() string {
	switch e {
	case OK:
		return "ok"
	case ErrConnect:
		return "connect-failure"
	case ErrTimeout:
		return "timeout"
	case ErrTLS:
		return "tls-failure"
	case ErrHTTP:
		return "http-error"
	case ErrDNS:
		return "dns-error"
	}
	return "unknown"
}

// Config holds the model's global parameters. Zero values are replaced by
// Defaults' fields in New.
type Config struct {
	Seed uint64
	// IntraStretch and InterStretch are routing path-stretch factors over
	// the great-circle distance, for short (<= StretchNearKm) and long
	// (>= StretchFarKm) paths; in between the factor interpolates
	// linearly. Long paths cross more provider boundaries and detour via
	// exchange hubs, so their stretch is higher.
	IntraStretch  float64
	InterStretch  float64
	StretchNearKm float64
	StretchFarKm  float64
	// HomeAccessMs and DCAccessMs are one-way access-network latencies
	// added to every traversal (DOCSIS/DSL interleaving vs. datacenter).
	HomeAccessMs float64
	DCAccessMs   float64
	// JitterSigma is the lognormal sigma applied multiplicatively to each
	// one-way delay from a datacenter vantage; HomeJitterSigma from home.
	JitterSigma     float64
	HomeJitterSigma float64
	// MinOWDMs floors every one-way delay (serialisation, kernel, NIC).
	MinOWDMs float64
	// LossP is the per-round-trip packet loss probability; a loss costs a
	// retransmission delay drawn from a bounded Pareto.
	LossP float64
	// ConnTimeoutMs is how long a failed connection attempt takes to be
	// reported when it fails silently (SYN blackhole) rather than fast
	// (RST); QueryTimeoutMs is the tool's per-query deadline.
	ConnTimeoutMs  float64
	QueryTimeoutMs float64
}

// Defaults returns the calibrated baseline configuration. The stretch and
// access constants were fitted against the medians the paper reports
// (DESIGN.md "Calibration targets").
func Defaults() Config {
	return Config{
		Seed:            1,
		IntraStretch:    1.25,
		InterStretch:    1.35,
		StretchNearKm:   2000,
		StretchFarKm:    9000,
		HomeAccessMs:    7.0,
		DCAccessMs:      0.3,
		JitterSigma:     0.08,
		HomeJitterSigma: 0.22,
		MinOWDMs:        0.35,
		LossP:           0.004,
		ConnTimeoutMs:   3000,
		QueryTimeoutMs:  5000,
	}
}

// Net is the simulated internet.
type Net struct {
	cfg Config
}

// New builds a Net, filling zero Config fields from Defaults.
func New(cfg Config) *Net {
	d := Defaults()
	if cfg.Seed == 0 {
		cfg.Seed = d.Seed
	}
	if cfg.IntraStretch == 0 {
		cfg.IntraStretch = d.IntraStretch
	}
	if cfg.InterStretch == 0 {
		cfg.InterStretch = d.InterStretch
	}
	if cfg.StretchNearKm == 0 {
		cfg.StretchNearKm = d.StretchNearKm
	}
	if cfg.StretchFarKm == 0 {
		cfg.StretchFarKm = d.StretchFarKm
	}
	if cfg.HomeAccessMs == 0 {
		cfg.HomeAccessMs = d.HomeAccessMs
	}
	if cfg.DCAccessMs == 0 {
		cfg.DCAccessMs = d.DCAccessMs
	}
	if cfg.JitterSigma == 0 {
		cfg.JitterSigma = d.JitterSigma
	}
	if cfg.HomeJitterSigma == 0 {
		cfg.HomeJitterSigma = d.HomeJitterSigma
	}
	if cfg.MinOWDMs == 0 {
		cfg.MinOWDMs = d.MinOWDMs
	}
	if cfg.LossP == 0 {
		cfg.LossP = d.LossP
	}
	if cfg.ConnTimeoutMs == 0 {
		cfg.ConnTimeoutMs = d.ConnTimeoutMs
	}
	if cfg.QueryTimeoutMs == 0 {
		cfg.QueryTimeoutMs = d.QueryTimeoutMs
	}
	return &Net{cfg: cfg}
}

// Config returns the effective configuration.
func (n *Net) Config() Config { return n.cfg }

// rng derives a deterministic RNG stream for a purpose. Every independent
// random decision in the model gets its own stream so adding a draw in one
// place never perturbs another.
func (n *Net) rng(keys ...string) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n.cfg.Seed >> (8 * i))
	}
	h.Write(b[:])
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	s1 := h.Sum64()
	h.Write([]byte{0xA5})
	s2 := h.Sum64()
	return rand.New(rand.NewPCG(s1, s2))
}

// stretch returns the path-stretch factor for a geodesic distance.
func (n *Net) stretch(distKm float64) float64 {
	c := n.cfg
	switch {
	case distKm <= c.StretchNearKm:
		return c.IntraStretch
	case distKm >= c.StretchFarKm:
		return c.InterStretch
	default:
		frac := (distKm - c.StretchNearKm) / (c.StretchFarKm - c.StretchNearKm)
		return c.IntraStretch + frac*(c.InterStretch-c.IntraStretch)
	}
}

// SiteFor returns the endpoint site serving the vantage (nearest under the
// anycast model) and its geodesic distance in km.
func (n *Net) SiteFor(v Vantage, e *Endpoint) (geo.Coord, float64) {
	i, d := geo.Nearest(v.Coord, e.Sites)
	if i < 0 {
		return geo.Coord{}, math.Inf(1)
	}
	return e.Sites[i], d
}

// BaseOWDMs returns the deterministic (jitter-free) one-way delay in ms
// between a vantage and a site: propagation over the stretched path plus
// the vantage's access latency and the floor.
func (n *Net) BaseOWDMs(v Vantage, site geo.Coord) float64 {
	d := geo.DistanceKm(v.Coord, site)
	owd := geo.PropagationMs(d, n.stretch(d))
	if v.Access == AccessHome {
		owd += n.cfg.HomeAccessMs
	} else {
		owd += n.cfg.DCAccessMs
	}
	if owd < n.cfg.MinOWDMs {
		owd = n.cfg.MinOWDMs
	}
	return owd
}

// owdSample draws one jittered one-way delay.
func (n *Net) owdSample(rng *rand.Rand, v Vantage, site geo.Coord) float64 {
	base := n.BaseOWDMs(v, site)
	sigma := n.cfg.JitterSigma
	if v.Access == AccessHome {
		sigma = n.cfg.HomeJitterSigma
	}
	return stats.LogNormalByMedian(rng, base, sigma)
}

// rttSample draws one round-trip time, accounting for loss-triggered
// retransmission: a lost segment costs an extra delay drawn from a bounded
// Pareto (RTO back-off territory).
func (n *Net) rttSample(rng *rand.Rand, v Vantage, site geo.Coord) float64 {
	rtt := n.owdSample(rng, v, site) + n.owdSample(rng, v, site)
	if stats.Bernoulli(rng, n.cfg.LossP) {
		rtt += stats.Pareto(rng, 1.2, 180, 1200)
	}
	return rtt
}

// QueryResult is the outcome of one simulated DNS transaction.
type QueryResult struct {
	Duration time.Duration
	Err      ErrClass
	// CacheHit reports whether the resolver answered from cache (only
	// meaningful when Err == OK).
	CacheHit bool
	// Site is the resolver site that served the query.
	Site geo.Coord
}

// roundTrips returns the number of network round trips a fresh transaction
// of the protocol costs before the answer: TCP handshake, TLS handshake
// (1 RTT for TLS 1.3, 2 for TLS 1.2), then the query/response exchange.
// Do53 over UDP is a single exchange. Connection reuse collapses everything
// but the exchange itself.
func roundTrips(p Protocol, e *Endpoint, reuse bool) int {
	if reuse || p == ProtoDo53 {
		return 1 // exchange only
	}
	rtts := 1 /* TCP */ + 1 /* TLS 1.3 */ + 1 /* exchange */
	if e.TLS12 {
		rtts++
	}
	return rtts
}

// Query simulates one DNS query from v to e at the given round index.
// reuse selects an established-connection query (the tool's default, like
// the paper's dig runs, is fresh connections: reuse=false).
func (n *Net) Query(v Vantage, e *Endpoint, p Protocol, reuse bool, round int, domain string) QueryResult {
	rng := n.rng("query", v.Name, e.Name, p.String(), domain, itoa(round))
	site, _ := n.SiteFor(v, e)
	res := QueryResult{Site: site}

	if e.Down {
		res.Err = ErrConnect
		res.Duration = msToDur(n.cfg.ConnTimeoutMs)
		return res
	}
	// Per-round flaky windows: drawn from a stream keyed only by endpoint
	// and round, so all domains in a round see the same window but rounds
	// are independent (no consistent failing subset across runs).
	failP := e.FailP
	if e.FlakyP > 0 {
		wrng := n.rng("window", e.Name, itoa(round))
		if stats.Bernoulli(wrng, e.FlakyP) {
			failP = 0.85
		}
	}
	if stats.Bernoulli(rng, failP) {
		// Classify the failure. Connection-establishment failures dominate
		// (the paper's most common error class), with smaller shares of
		// timeouts, HTTP-level errors, and TLS failures.
		switch u := rng.Float64(); {
		case u < 0.78:
			res.Err = ErrConnect
			// Fast RST-style refusal ~70% of the time, silent SYN drop
			// with a full connect timeout otherwise.
			if stats.Bernoulli(rng, 0.7) {
				res.Duration = msToDur(n.rttSample(rng, v, site))
			} else {
				res.Duration = msToDur(n.cfg.ConnTimeoutMs)
			}
		case u < 0.88:
			res.Err = ErrTimeout
			res.Duration = msToDur(n.cfg.QueryTimeoutMs)
		case u < 0.95 && p == ProtoDoH:
			// The endpoint spoke HTTPS but answered 5xx: costs the full
			// connection setup plus the failed exchange.
			res.Err = ErrHTTP
			var ms float64
			for i := 0; i < roundTrips(p, e, reuse); i++ {
				ms += n.rttSample(rng, v, site)
			}
			res.Duration = msToDur(ms)
		default:
			// TLS negotiation failure: TCP connected, handshake died.
			res.Err = ErrTLS
			res.Duration = msToDur(n.rttSample(rng, v, site) + n.rttSample(rng, v, site))
		}
		return res
	}

	var totalMs float64
	rtts := roundTrips(p, e, reuse) + e.ExtraRTT
	for i := 0; i < rtts; i++ {
		totalMs += n.rttSample(rng, v, site)
	}
	// Server processing: cache hit or a full recursion.
	res.CacheHit = stats.Bernoulli(rng, e.CacheHitP)
	proc := stats.LogNormalByMedian(rng, e.ProcMs, e.ProcSigma)
	if !res.CacheHit {
		proc += stats.LogNormalByMedian(rng, e.RecurseMs, 0.45)
	}
	totalMs += proc

	if totalMs > n.cfg.QueryTimeoutMs {
		res.Err = ErrTimeout
		res.Duration = msToDur(n.cfg.QueryTimeoutMs)
		return res
	}
	res.Duration = msToDur(totalMs)
	return res
}

// Ping simulates one ICMP echo exchange. It returns ok=false when the
// endpoint does not answer ICMP or the probe (including retries) was lost.
func (n *Net) Ping(v Vantage, e *Endpoint, round int) (time.Duration, bool) {
	if e.Down || !e.ICMPResponds {
		return 0, false
	}
	rng := n.rng("ping", v.Name, e.Name, itoa(round))
	site, _ := n.SiteFor(v, e)
	for attempt := 0; attempt < 3; attempt++ {
		if stats.Bernoulli(rng, n.cfg.LossP) {
			continue
		}
		// ICMP echo is a single exchange with negligible target processing.
		return msToDur(n.owdSample(rng, v, site) + n.owdSample(rng, v, site)), true
	}
	return 0, false
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}
