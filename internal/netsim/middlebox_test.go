package netsim

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"encdns/internal/certs"
	"encdns/internal/dialer"
	"encdns/internal/testutil"
)

// startTLSEcho runs a TLS server on the VirtualNet that echoes one line
// back to each client. It returns the CA the client must trust.
func startTLSEcho(t *testing.T, vn *VirtualNet, addr, serverName string) *certs.CA {
	t.Helper()
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ca.ServerConfig([]string{serverName}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := vn.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				tc := tls.Server(c, cfg)
				buf := make([]byte, 64)
				n, err := tc.Read(buf)
				if err != nil {
					return
				}
				tc.Write(buf[:n])
			}(conn)
		}
	}()
	return ca
}

// handshake dials addr through the given chain and path and attempts a
// full TLS handshake plus one echo round trip.
func handshake(ctx context.Context, chain []dialer.Spec, path *PathDialer, ca *certs.CA, serverName, addr string) error {
	d, err := dialer.BuildStream(chain, dialer.StreamOf(path))
	if err != nil {
		return err
	}
	raw, err := d.DialStream(ctx, addr)
	if err != nil {
		return err
	}
	defer raw.Close()
	if deadline, ok := ctx.Deadline(); ok {
		raw.SetDeadline(deadline)
	}
	tc := tls.Client(raw, ca.ClientConfig(serverName))
	if err := tc.HandshakeContext(ctx); err != nil {
		return err
	}
	if _, err := tc.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(tc, buf); err != nil {
		return err
	}
	if string(buf) != "ping" {
		return errors.New("echo mismatch")
	}
	return nil
}

func TestRSTOnSNIBlocksPlainAllowsFragmented(t *testing.T) {
	// Cleanups run last-in-first-out: this check runs after the TLS echo
	// server's listener (registered later) has been closed.
	baseline := testutil.GoroutineBaseline()
	t.Cleanup(func() { testutil.WaitNoLeaks(t, baseline) })
	vn := NewVirtualNet()
	const name, addr = "blocked.test", "192.0.2.53:853"
	ca := startTLSEcho(t, vn, addr, name)
	path := vn.Path(&RSTOnSNI{Blocked: []string{name}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Plain dial: the whole ClientHello is one segment, the SNI matches,
	// the middlebox resets the connection.
	err := handshake(ctx, nil, path, ca, name, addr)
	if err == nil {
		t.Fatal("plain handshake succeeded through the SNI filter")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("plain failure = %v, want ECONNRESET", err)
	}

	// Same endpoint behind tlsfrag: no single segment carries a
	// parseable ClientHello, the filter never matches, TLS completes.
	chain, err := dialer.ParseSpecs("tlsfrag:sni")
	if err != nil {
		t.Fatal(err)
	}
	if err := handshake(ctx, chain, path, ca, name, addr); err != nil {
		t.Fatalf("tlsfrag handshake failed: %v", err)
	}

	// split evades the same filter: neither half is a complete record.
	chain, _ = dialer.ParseSpecs("split:3")
	if err := handshake(ctx, chain, path, ca, name, addr); err != nil {
		t.Fatalf("split handshake failed: %v", err)
	}
}

func TestDropLargeRecordFirstSegmentOnly(t *testing.T) {
	vn := NewVirtualNet()
	const name, addr = "resolver.test", "192.0.2.54:853"
	ca := startTLSEcho(t, vn, addr, name)
	// Any realistic ClientHello is far larger than 64 bytes.
	path := vn.Path(&DropLargeRecord{MaxBytes: 64})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := handshake(ctx, nil, path, ca, name, addr)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("plain dial through drop filter = %v, want deadline exceeded (stranded)", err)
	}

	// tlsfrag's first record is small; the second segment is never
	// inspected (first-segment-only DPI), so the handshake completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	chain, _ := dialer.ParseSpecs("tlsfrag:32")
	if err := handshake(ctx2, chain, path, ca, name, addr); err != nil {
		t.Fatalf("tlsfrag handshake failed: %v", err)
	}
}

func TestThrottleFamilyStrandsOneFamily(t *testing.T) {
	vn := NewVirtualNet()
	const name = "resolver.test"
	const v4addr, v6addr = "192.0.2.55:853", "[2001:db8::55]:853"
	startTLSEcho(t, vn, v4addr, name)
	startTLSEcho(t, vn, v6addr, name)
	path := vn.Path(&ThrottleFamily{Family: "ipv6"})

	// Direct v6 dial hangs until the context dies.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := path.DialContext(ctx, "tcp", v6addr); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("v6 dial = %v, want deadline exceeded", err)
	}
	// v4 is untouched.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	conn, err := path.DialContext(ctx2, "tcp", v4addr)
	if err != nil {
		t.Fatalf("v4 dial = %v", err)
	}
	conn.Close()
}

func TestBlackholeAndMissingListener(t *testing.T) {
	vn := NewVirtualNet()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := vn.Path(&Blackhole{}).DialContext(ctx, "tcp", "192.0.2.1:853"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blackhole dial = %v, want deadline exceeded", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_, err := vn.Path().DialContext(ctx2, "tcp", "192.0.2.9:853")
	if err == nil || !strings.Contains(err.Error(), "no listener") {
		t.Errorf("missing listener dial = %v", err)
	}
}

func TestMiddleboxNames(t *testing.T) {
	for mb, want := range map[Middlebox]string{
		&RSTOnSNI{}:                     "rst-on-sni",
		&DropLargeRecord{}:              "drop-large-record",
		&ThrottleFamily{Family: "ipv6"}: "throttle-ipv6",
		&Blackhole{}:                    "blackhole",
	} {
		if got := mb.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
