package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"encdns/internal/geo"
	"encdns/internal/stats"
)

// This file models anycast catchment for a multi-site resolver cluster:
// which instance each client in a large population lands on when every
// client is routed to its nearest *healthy* site (the BGP-ish
// approximation the paper's anycast endpoints exhibit — clients see one
// IP, the routing system picks the site). It reuses the Endpoint.Sites
// nearest-site machinery, so the steering rule here is exactly the rule
// Query applies to anycast endpoints.

// Instance is one cluster member as the catchment model sees it.
type Instance struct {
	// Name labels the instance in reports (by convention its cluster
	// peer ID).
	Name string
	// Site is the instance's deployment location.
	Site geo.Coord
	// Healthy instances attract traffic; unhealthy ones shed their
	// whole catchment to the surviving sites.
	Healthy bool
}

// CatchmentClass is one client population segment, anchored on a vantage
// the paper measured from: clients scatter around the vantage's
// coordinate and inherit its access-network characteristics.
type CatchmentClass struct {
	Vantage Vantage
	// Weight is the class's share of the total population; weights are
	// normalised, so any positive scale works.
	Weight float64
	// SpreadKm is the standard deviation of client scatter around the
	// vantage coordinate (a metro-ish 50 km models one city's
	// broadband population; continental classes use more).
	SpreadKm float64
}

// CatchmentReport summarises one steering of a client population across
// the cluster's healthy instances.
type CatchmentReport struct {
	Clients int
	// PerInstance is each instance's catchment size (clients steered to
	// it). Unhealthy instances appear with zero.
	PerInstance map[string]int
	// Unserved counts clients with no healthy instance at all.
	Unserved int
	// Client-to-instance RTT distribution across the served population.
	Mean, P50, P95, P99 time.Duration
}

// Share returns an instance's fraction of the served population.
func (r *CatchmentReport) Share(name string) float64 {
	served := r.Clients - r.Unserved
	if served == 0 {
		return 0
	}
	return float64(r.PerInstance[name]) / float64(served)
}

// String renders the report for logs and experiment output.
func (r *CatchmentReport) String() string {
	names := make([]string, 0, len(r.PerInstance))
	for n := range r.PerInstance {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("catchment{clients=%d unserved=%d p50=%s p95=%s p99=%s",
		r.Clients, r.Unserved, r.P50, r.P95, r.P99)
	for _, n := range names {
		s += fmt.Sprintf(" %s=%.1f%%", n, 100*r.Share(n))
	}
	return s + "}"
}

// CatchmentModel steers simulated client populations across a cluster.
type CatchmentModel struct {
	Net *Net
	// Classes describe the population mix; at least one is required.
	Classes []CatchmentClass
}

// Assign steers a population of total clients to their nearest healthy
// instance and samples each client's query RTT to that instance. The
// whole run is deterministic in the Net seed, the class list, and the
// instance set: same inputs, same report — which is what lets the
// failover test assert exact catchment shifts with zero wall-clock
// sleeps. Cost is O(total × instances); a million clients over a
// handful of sites runs in well under a second.
func (m *CatchmentModel) Assign(total int, instances []Instance) CatchmentReport {
	rep := CatchmentReport{
		Clients:     total,
		PerInstance: make(map[string]int, len(instances)),
	}
	healthy := make([]geo.Coord, 0, len(instances))
	siteName := make(map[geo.Coord]string, len(instances))
	for _, inst := range instances {
		rep.PerInstance[inst.Name] = 0
		if inst.Healthy {
			healthy = append(healthy, inst.Site)
			siteName[inst.Site] = inst.Name
		}
	}
	if total <= 0 {
		return rep
	}
	if len(healthy) == 0 {
		rep.Unserved = total
		return rep
	}
	// The cluster presents as one anycast endpoint whose sites are the
	// healthy instances; SiteFor then applies the standard nearest-site
	// steering rule.
	ep := &Endpoint{Name: "cluster", Sites: healthy}

	var weightSum float64
	for _, c := range m.Classes {
		weightSum += c.Weight
	}
	rtts := make([]float64, 0, total)
	assigned := 0
	for ci, class := range m.Classes {
		n := int(math.Round(float64(total) * class.Weight / weightSum))
		if ci == len(m.Classes)-1 {
			n = total - assigned // rounding remainder lands on the last class
		}
		assigned += n
		rng := m.Net.rng("catchment", class.Vantage.Name, itoa(ci))
		// ~111 km per degree of latitude; longitude shrinks by cos(lat).
		latSigma := class.SpreadKm / 111.0
		lonScale := math.Cos(class.Vantage.Coord.Lat * math.Pi / 180)
		if lonScale < 0.2 {
			lonScale = 0.2
		}
		for i := 0; i < n; i++ {
			v := class.Vantage
			v.Name = "" // clients share the class RNG stream, not the vantage's
			v.Coord.Lat += rng.NormFloat64() * latSigma
			v.Coord.Lon += rng.NormFloat64() * latSigma / lonScale
			site, _ := m.Net.SiteFor(v, ep)
			rep.PerInstance[siteName[site]]++
			rtts = append(rtts, m.Net.rttSample(rng, v, site))
		}
	}
	rep.Mean = msToDur(stats.Mean(rtts))
	rep.P50 = msToDur(stats.Quantile(rtts, 0.50))
	rep.P95 = msToDur(stats.Quantile(rtts, 0.95))
	rep.P99 = msToDur(stats.Quantile(rtts, 0.99))
	return rep
}
