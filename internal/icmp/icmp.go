// Package icmp implements the ICMP echo packets used by the paper's latency
// metric (§3.1: "Each time we issued a set of DoH queries to a resolver, we
// also issued a ICMP ping message and noted the round-trip time"), plus the
// Pinger interface the measurement engine probes through.
//
// The wire codec covers ICMPv4 echo request/reply (RFC 792) with the
// Internet checksum of RFC 1071. Actually emitting raw ICMP needs
// privileged sockets and a live network; in this reproduction the packets
// travel over the simulated internet (internal/netsim), which echoes them
// with modelled path latency — or drops them for resolvers that the paper
// notes "did not respond to our ICMP ping probes".
package icmp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Message types (RFC 792).
const (
	TypeEchoReply   = 0
	TypeEchoRequest = 8
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Type    uint8 // TypeEchoRequest or TypeEchoReply
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

// Errors returned by the codec.
var (
	ErrTruncated   = errors.New("icmp: truncated packet")
	ErrBadChecksum = errors.New("icmp: bad checksum")
	ErrNotEcho     = errors.New("icmp: not an echo message")
)

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Marshal encodes the echo message with a correct checksum.
func (e *Echo) Marshal() []byte {
	b := make([]byte, 8+len(e.Payload))
	b[0] = e.Type
	b[1] = e.Code
	binary.BigEndian.PutUint16(b[4:], e.ID)
	binary.BigEndian.PutUint16(b[6:], e.Seq)
	copy(b[8:], e.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// Parse decodes an echo message, verifying length, checksum, and type.
func Parse(b []byte) (*Echo, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if Checksum(b) != 0 {
		return nil, ErrBadChecksum
	}
	if b[0] != TypeEchoRequest && b[0] != TypeEchoReply {
		return nil, fmt.Errorf("%w: type %d", ErrNotEcho, b[0])
	}
	e := &Echo{
		Type: b[0],
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
	}
	if len(b) > 8 {
		e.Payload = append([]byte(nil), b[8:]...)
	}
	return e, nil
}

// Reply builds the echo reply for a request, echoing ID, Seq, and payload
// per RFC 792.
func (e *Echo) Reply() *Echo {
	return &Echo{Type: TypeEchoReply, ID: e.ID, Seq: e.Seq, Payload: e.Payload}
}

// Pinger measures round-trip time to a host. The measurement engine is
// written against this interface so the simulated and (hypothetical) raw-
// socket implementations are interchangeable.
type Pinger interface {
	// Ping sends one echo request to host and returns the round-trip time.
	// Hosts that do not answer ICMP return ErrNoReply (possibly after the
	// context deadline).
	Ping(ctx context.Context, host string) (time.Duration, error)
}

// ErrNoReply is returned when no echo reply arrives. The paper: "Certain
// resolvers did not respond to our ICMP ping probes; for those resolvers,
// no latency data is shown."
var ErrNoReply = errors.New("icmp: no echo reply")

// PingerFunc adapts a function to the Pinger interface.
type PingerFunc func(ctx context.Context, host string) (time.Duration, error)

// Ping implements Pinger.
func (f PingerFunc) Ping(ctx context.Context, host string) (time.Duration, error) {
	return f(ctx, host)
}
