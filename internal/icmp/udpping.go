package icmp

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// UDPPinger measures round-trip time by sending ICMP-formatted echo
// packets over UDP to an EchoServer — the unprivileged stand-in for raw
// ICMP sockets (which need CAP_NET_RAW and a live network). The wire
// payload is the real ICMP echo encoding, so the codec and the RTT
// bookkeeping match what a privileged pinger would do.
type UDPPinger struct {
	// Resolve maps a host name to the echo server's UDP address; nil uses
	// the host string as the address directly.
	Resolve func(host string) (string, error)
	// Timeout bounds one echo exchange; zero means 2s.
	Timeout time.Duration

	id  uint16
	seq atomic.Uint32
	mu  sync.Mutex
}

// NewUDPPinger creates a pinger with a random ICMP identifier.
func NewUDPPinger() *UDPPinger {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("icmp: reading random id: " + err.Error())
	}
	return &UDPPinger{id: binary.BigEndian.Uint16(b[:])}
}

func (p *UDPPinger) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return 2 * time.Second
}

// Ping implements the Pinger interface.
func (p *UDPPinger) Ping(ctx context.Context, host string) (time.Duration, error) {
	addr := host
	if p.Resolve != nil {
		var err error
		if addr, err = p.Resolve(host); err != nil {
			return 0, fmt.Errorf("icmp: resolving %s: %w", host, err)
		}
	}
	ctx, cancel := context.WithTimeout(ctx, p.timeout())
	defer cancel()

	conn, err := (&net.Dialer{}).DialContext(ctx, "udp", addr)
	if err != nil {
		return 0, fmt.Errorf("icmp: dial %s: %w", addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}

	seq := uint16(p.seq.Add(1))
	req := &Echo{Type: TypeEchoRequest, ID: p.id, Seq: seq, Payload: []byte("encdns-ping")}
	start := time.Now()
	if _, err := conn.Write(req.Marshal()); err != nil {
		return 0, fmt.Errorf("icmp: send: %w", err)
	}
	buf := make([]byte, 1500)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return 0, ErrNoReply
		}
		rep, err := Parse(buf[:n])
		if err != nil || rep.Type != TypeEchoReply || rep.ID != p.id || rep.Seq != seq {
			continue // stray or stale datagram
		}
		return time.Since(start), nil
	}
}

// EchoServer answers ICMP-formatted echo requests over UDP, optionally
// delaying each reply (to model path latency in tests and demos).
type EchoServer struct {
	// Delay postpones each reply.
	Delay time.Duration
	// Drop, when set, makes the server ignore every n-th request
	// (1-based); zero disables.
	DropEvery int

	pc       net.PacketConn
	received atomic.Int64
}

// Serve answers echo requests on pc until it is closed.
func (s *EchoServer) Serve(pc net.PacketConn) error {
	s.pc = pc
	buf := make([]byte, 1500)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return nil // closed
		}
		req, err := Parse(buf[:n])
		if err != nil || req.Type != TypeEchoRequest {
			continue
		}
		count := s.received.Add(1)
		if s.DropEvery > 0 && count%int64(s.DropEvery) == 0 {
			continue
		}
		reply := req.Reply().Marshal()
		go func(to net.Addr) {
			if s.Delay > 0 {
				time.Sleep(s.Delay)
			}
			_, _ = pc.WriteTo(reply, to)
		}(from)
	}
}

// Received reports how many well-formed requests arrived.
func (s *EchoServer) Received() int64 { return s.received.Load() }
