package icmp

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3: the one's-complement sum of
	// 0001 f203 f4f5 f6f7 is ddf2, checksum ^ddf2 = 220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length packets are padded with a zero byte.
	odd := Checksum([]byte{0xAB})
	even := Checksum([]byte{0xAB, 0x00})
	if odd != even {
		t.Errorf("odd %#04x != padded %#04x", odd, even)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(payload []byte) bool {
		e := Echo{Type: TypeEchoRequest, ID: 1, Seq: 2, Payload: payload}
		return Checksum(e.Marshal()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	e := &Echo{Type: TypeEchoRequest, ID: 0xBEEF, Seq: 7, Payload: []byte("ping!")}
	got, err := Parse(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeEchoRequest || got.ID != 0xBEEF || got.Seq != 7 {
		t.Errorf("parsed = %+v", got)
	}
	if !bytes.Equal(got.Payload, []byte("ping!")) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestEchoRoundTripProperty(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		e := &Echo{Type: TypeEchoRequest, ID: id, Seq: seq, Payload: payload}
		got, err := Parse(e.Marshal())
		if err != nil {
			return false
		}
		return got.ID == id && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{8, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	e := (&Echo{Type: TypeEchoRequest, ID: 1}).Marshal()
	e[7] ^= 0xFF // corrupt without fixing checksum
	if _, err := Parse(e); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt: %v", err)
	}
	// Valid checksum but a non-echo type (3 = dest unreachable).
	d := (&Echo{Type: 3, ID: 1}).Marshal()
	if _, err := Parse(d); !errors.Is(err, ErrNotEcho) {
		t.Errorf("non-echo: %v", err)
	}
}

func TestReply(t *testing.T) {
	req := &Echo{Type: TypeEchoRequest, ID: 5, Seq: 9, Payload: []byte("x")}
	rep := req.Reply()
	if rep.Type != TypeEchoReply || rep.ID != 5 || rep.Seq != 9 || !bytes.Equal(rep.Payload, req.Payload) {
		t.Errorf("reply = %+v", rep)
	}
	// Reply parses as a valid packet too.
	if _, err := Parse(rep.Marshal()); err != nil {
		t.Errorf("reply parse: %v", err)
	}
}

func TestPingerFunc(t *testing.T) {
	p := PingerFunc(func(ctx context.Context, host string) (time.Duration, error) {
		if host == "dark.example" {
			return 0, ErrNoReply
		}
		return 25 * time.Millisecond, nil
	})
	if d, err := p.Ping(context.Background(), "ok.example"); err != nil || d != 25*time.Millisecond {
		t.Errorf("ping = %v, %v", d, err)
	}
	if _, err := p.Ping(context.Background(), "dark.example"); !errors.Is(err, ErrNoReply) {
		t.Errorf("dark ping err = %v", err)
	}
}
