package icmp

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// startEcho launches an EchoServer on loopback and returns its address.
func startEcho(t *testing.T, srv *EchoServer) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(pc)
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr().String()
}

func TestUDPPingRoundTrip(t *testing.T) {
	addr := startEcho(t, &EchoServer{})
	p := NewUDPPinger()
	rtt, err := p.Ping(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("rtt = %v", rtt)
	}
}

func TestUDPPingMeasuresDelay(t *testing.T) {
	const delay = 40 * time.Millisecond
	addr := startEcho(t, &EchoServer{Delay: delay})
	p := NewUDPPinger()
	rtt, err := p.Ping(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < delay {
		t.Errorf("rtt %v < injected delay %v", rtt, delay)
	}
	if rtt > delay*3 {
		t.Errorf("rtt %v ≫ injected delay %v", rtt, delay)
	}
}

func TestUDPPingTimeout(t *testing.T) {
	// A UDP socket that never replies.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	p := NewUDPPinger()
	p.Timeout = 80 * time.Millisecond
	start := time.Now()
	_, err = p.Ping(context.Background(), pc.LocalAddr().String())
	if !errors.Is(err, ErrNoReply) {
		t.Fatalf("err = %v, want ErrNoReply", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout not enforced")
	}
}

func TestUDPPingResolveHook(t *testing.T) {
	addr := startEcho(t, &EchoServer{})
	p := NewUDPPinger()
	p.Resolve = func(host string) (string, error) {
		if host != "resolver.example" {
			return "", errors.New("unknown host")
		}
		return addr, nil
	}
	if _, err := p.Ping(context.Background(), "resolver.example"); err != nil {
		t.Fatalf("resolved ping: %v", err)
	}
	if _, err := p.Ping(context.Background(), "other.example"); err == nil {
		t.Error("unresolvable host pinged")
	}
}

func TestUDPPingSequencesDistinct(t *testing.T) {
	addr := startEcho(t, &EchoServer{})
	p := NewUDPPinger()
	for i := 0; i < 5; i++ {
		if _, err := p.Ping(context.Background(), addr); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestEchoServerDrops(t *testing.T) {
	srv := &EchoServer{DropEvery: 2} // drop every 2nd request
	addr := startEcho(t, srv)
	p := NewUDPPinger()
	p.Timeout = 100 * time.Millisecond
	okCount, failCount := 0, 0
	for i := 0; i < 6; i++ {
		if _, err := p.Ping(context.Background(), addr); err != nil {
			failCount++
		} else {
			okCount++
		}
	}
	if okCount == 0 || failCount == 0 {
		t.Errorf("ok=%d fail=%d, want a mix with DropEvery=2", okCount, failCount)
	}
	if srv.Received() != 6 {
		t.Errorf("received = %d", srv.Received())
	}
}

func TestEchoServerIgnoresGarbage(t *testing.T) {
	srv := &EchoServer{}
	addr := startEcho(t, srv)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _ = conn.Write([]byte("definitely not icmp"))
	// Server survives; a real ping still works.
	p := NewUDPPinger()
	if _, err := p.Ping(context.Background(), addr); err != nil {
		t.Fatalf("ping after garbage: %v", err)
	}
}

func TestUDPPingContextCancel(t *testing.T) {
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer pc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	p := NewUDPPinger()
	p.Timeout = 5 * time.Second
	start := time.Now()
	if _, err := p.Ping(ctx, pc.LocalAddr().String()); err == nil {
		t.Fatal("cancelled ping succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation not honoured")
	}
}
