// Package encdns is the public facade of the encrypted-DNS measurement
// library — the open-source tool released with "Global Measurements of the
// Availability and Response Times of Public Encrypted DNS Resolvers"
// (Sharma & Feamster). It measures DNS query response times and ICMP
// latency for DoH, DoT, and Do53 resolvers from one or many vantage
// points, continuously, and writes per-query JSON records.
//
// The facade re-exports the library's stable surface:
//
//   - Measuring: Campaign, CampaignConfig, Prober, SimProber, LiveProber,
//     Target, Record, ResultSet.
//   - The protocol substrate: the DoH/DoT/Do53 clients under
//     internal/{doh,dot,dns53} via the NewDoH*/NewDoT*/NewDo53* helpers.
//   - The measurement population and vantage points of the paper under
//     Resolvers/Vantages.
//   - Reporting: BuildChart plus the report.BoxChart/Table renderers.
//
// Quickstart (simulated campaign over the paper's population):
//
//	runner := encdns.NewRunner(1, 0)
//	chart, _ := runner.Figure(encdns.Fig1)
//	chart.Render(os.Stdout)
//
// Live measurement of one real resolver (endpoints are scheme-addressed:
// udp://, tcp://, tls://, https://):
//
//	pool := encdns.NewTransportPool(encdns.TransportOptions{})
//	prober := &encdns.LiveProber{Transport: pool}
//	cfg := encdns.CampaignConfig{
//	    Vantages: []encdns.Vantage{{Name: "here"}},
//	    Targets:  []encdns.Target{{Host: "dns.example", Endpoint: "https://dns.example/dns-query"}},
//	    Domains:  encdns.Domains,
//	    Rounds:   10,
//	    Clock:    encdns.WallClock{},
//	}
//	campaign, _ := encdns.NewCampaign(cfg, prober)
//	results, _ := campaign.Run(ctx)
//	results.WriteJSONFile("results.jsonl")
package encdns

import (
	"crypto/tls"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/dns53"
	"encdns/internal/doh"
	"encdns/internal/dot"
	"encdns/internal/experiment"
	"encdns/internal/netsim"
	"encdns/internal/report"
	"encdns/internal/transport"
)

// Transport-layer surface: the scheme-addressed exchanger substrate that
// every live consumer (prober, forwarder, CLIs) shares.
type (
	// Exchanger performs DNS exchanges with one dialled endpoint.
	Exchanger = transport.Exchanger
	// TransportOptions configures DialEndpoint/NewTransportPool.
	TransportOptions = transport.Options
	// TransportPool lazily dials one Exchanger per endpoint.
	TransportPool = transport.Pool
	// RetryPolicy is the shared retry/backoff policy.
	RetryPolicy = transport.RetryPolicy
	// PoolStats counts connection-pool activity.
	PoolStats = transport.PoolStats
)

// DialEndpoint binds an Exchanger to a scheme-addressed endpoint
// (udp://host:port, tcp://host:port, tls://host:853,
// https://host/dns-query), wrapping it in the shared retry middleware.
func DialEndpoint(endpoint string, opts TransportOptions) (Exchanger, error) {
	return transport.Dial(endpoint, opts)
}

// NewTransportPool builds the endpoint-addressed transport pool that
// LiveProber and the forwarder consume.
func NewTransportPool(opts TransportOptions) *TransportPool { return transport.NewPool(opts) }

// NewHedgedExchanger races the same query against several endpoints,
// staggered by delay; the first success wins and the losers are
// cancelled.
func NewHedgedExchanger(delay time.Duration, exchangers ...Exchanger) Exchanger {
	return transport.NewHedged(delay, exchangers...)
}

// Measurement engine surface.
type (
	// Campaign executes measurement rounds; see NewCampaign.
	Campaign = core.Campaign
	// CampaignConfig configures a Campaign.
	CampaignConfig = core.CampaignConfig
	// Prober abstracts how queries and pings are issued.
	Prober = core.Prober
	// SimProber probes the simulated internet.
	SimProber = core.SimProber
	// LiveProber probes real resolvers with the real protocol clients.
	LiveProber = core.LiveProber
	// Target identifies one resolver to probe.
	Target = core.Target
	// Record is one measurement outcome.
	Record = core.Record
	// ResultSet accumulates records and answers analysis queries.
	ResultSet = core.ResultSet
	// Availability is the success/error tally of a result set.
	Availability = core.Availability
)

// Network-model surface.
type (
	// Vantage is a measurement client location.
	Vantage = netsim.Vantage
	// Endpoint parameterises a resolver in the network model.
	Endpoint = netsim.Endpoint
	// NetConfig configures the simulated internet.
	NetConfig = netsim.Config
	// Net is the simulated internet.
	Net = netsim.Net
	// Clock abstracts time for campaigns.
	Clock = netsim.Clock
	// VirtualClock is a manually advanced clock for simulations.
	VirtualClock = netsim.VirtualClock
	// WallClock is the real-time clock for live measurements.
	WallClock = netsim.WallClock
)

// Dataset surface.
type (
	// Resolver is one entry of the paper's measurement population.
	Resolver = dataset.Resolver
)

// Reporting and reproduction surface.
type (
	// Runner reproduces the paper's experiments.
	Runner = experiment.Runner
	// FigureID names one of the paper's figure panels.
	FigureID = experiment.FigureID
	// BoxChart is a renderable figure.
	BoxChart = report.BoxChart
	// Table is a renderable table.
	Table = report.Table
)

// Figure panels, re-exported from the experiment package.
const (
	Fig1  = experiment.Fig1
	Fig2a = experiment.Fig2a
	Fig2b = experiment.Fig2b
	Fig2c = experiment.Fig2c
	Fig2d = experiment.Fig2d
	Fig3a = experiment.Fig3a
	Fig3b = experiment.Fig3b
	Fig3c = experiment.Fig3c
	Fig3d = experiment.Fig3d
	Fig4a = experiment.Fig4a
	Fig4b = experiment.Fig4b
	Fig4c = experiment.Fig4c
	Fig4d = experiment.Fig4d
)

// Domains are the paper's three query names.
var Domains = dataset.Domains

// NewCampaign validates the configuration and builds a campaign.
func NewCampaign(cfg CampaignConfig, p Prober) (*Campaign, error) {
	return core.NewCampaign(cfg, p)
}

// NewRunner builds a reproduction runner; rounds <= 0 selects the default.
func NewRunner(seed uint64, rounds int) *Runner { return experiment.New(seed, rounds) }

// NewNet builds the simulated internet, filling defaults.
func NewNet(cfg NetConfig) *Net { return netsim.New(cfg) }

// Resolvers returns the paper's measurement population (Appendix A.2).
func Resolvers() []Resolver { return dataset.Resolvers() }

// Vantages returns the paper's seven measurement clients.
func Vantages() []Vantage { return dataset.Vantages() }

// Targets converts resolvers into campaign targets.
func Targets(rs []Resolver) []Target { return experiment.Targets(rs) }

// NewDoHClient builds an RFC 8484 client. tlsCfg and dialer may be nil;
// reuse selects HTTP keep-alive.
func NewDoHClient(tlsCfg *tls.Config, dialer dns53.ContextDialer, reuse bool) *doh.Client {
	return doh.NewClient(tlsCfg, dialer, reuse)
}

// NewDoTClient builds an RFC 7858 client.
func NewDoTClient(tlsCfg *tls.Config, reuse bool) *dot.Client {
	return &dot.Client{TLS: tlsCfg, Reuse: reuse}
}

// NewDo53Client builds a conventional DNS client with UDP retry and TCP
// truncation fallback.
func NewDo53Client() *dns53.Client { return &dns53.Client{} }

// BuildChart assembles a figure-style chart from any result set.
func BuildChart(rs *ResultSet, title string, group []Resolver, vantage string) *BoxChart {
	return experiment.BuildChart(rs, title, group, vantage)
}
