// Quickstart: measure a handful of public DoH resolvers from one vantage
// point and print a summary — the five-minute tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"encdns"
	"encdns/internal/stats"
)

func main() {
	// Pick three resolvers from the paper's population: one mainstream
	// anycast, one well-run ISP resolver, one single-site hobby project.
	var targets []encdns.Target
	for _, r := range encdns.Resolvers() {
		switch r.Host {
		case "dns.google", "ordns.he.net", "doh.ffmuc.net":
			targets = append(targets, encdns.Targets([]encdns.Resolver{r})...)
		}
	}

	// Measure from the Seoul EC2 vantage over the simulated internet.
	var seoul encdns.Vantage
	for _, v := range encdns.Vantages() {
		if v.Name == "ec2-seoul" {
			seoul = v
		}
	}

	cfg := encdns.CampaignConfig{
		Vantages: []encdns.Vantage{seoul},
		Targets:  targets,
		Domains:  encdns.Domains,
		Rounds:   40,
		Interval: 8 * time.Hour,
	}
	prober := &encdns.SimProber{Net: encdns.NewNet(encdns.NetConfig{Seed: 1})}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		log.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured %d records from %s\n\n", results.Len(), seoul.Name)
	for _, t := range targets {
		resp := results.QuerySamples(seoul.Name, t.Host)
		ping := results.PingSamples(seoul.Name, t.Host)
		fmt.Printf("%-16s median response %6.1f ms   median ping %6.1f ms   (%d samples)\n",
			t.Host, stats.Median(resp), stats.Median(ping), len(resp))
	}

	// The tool's native output is a JSON Lines file (§3.1).
	if err := results.WriteJSONFile("quickstart-results.jsonl"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote quickstart-results.jsonl")
	_ = os.Remove("quickstart-results.jsonl") // tidy up the demo artefact
}
