// Live loopback: the whole stack, no simulation. This example stands up a
// real encrypted-DNS resolver in-process — authoritative root/TLD/leaf
// zones, a caching recursive resolver, and a DoH frontend on a loopback
// TLS listener — then measures it with the live prober over real sockets,
// exactly as dnsmeasure -mode live would measure a public resolver.
//
//	go run ./examples/live-loopback
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"encdns"
	"encdns/internal/authdns"
	"encdns/internal/certs"
	"encdns/internal/doh"
	"encdns/internal/resolver"
	"encdns/internal/stats"
)

func main() {
	// 1. The authoritative hierarchy for the paper's three domains.
	hierarchy := authdns.BuildHierarchy(authdns.MeasurementLeaves())

	// 2. A caching recursive resolver walking that hierarchy.
	rec := &resolver.Recursive{
		Exchange: hierarchy.Registry,
		Roots:    hierarchy.RootServers,
		Cache:    resolver.NewCache(4096, nil),
	}

	// 3. A DoH frontend on a loopback TLS listener with a throwaway CA.
	ca, err := certs.NewCA(0)
	if err != nil {
		log.Fatal(err)
	}
	tlsCfg, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	srv := &http.Server{Handler: mux, TLSConfig: tlsCfg}
	go srv.ServeTLS(ln, "", "")
	defer srv.Close()
	endpoint := "https://" + ln.Addr().String() + doh.DefaultPath
	fmt.Println("serving DoH at", endpoint)

	// 4. Measure it live: fresh connections, wall-clock timing, through
	// the scheme-addressed transport layer (the endpoint's https://
	// scheme selects DoH; no per-protocol wiring here).
	pool := encdns.NewTransportPool(encdns.TransportOptions{TLS: ca.ClientConfig("127.0.0.1")})
	prober := &encdns.LiveProber{Transport: pool}
	cfg := encdns.CampaignConfig{
		Vantages: []encdns.Vantage{{Name: "loopback"}},
		Targets:  []encdns.Target{{Host: "loopback-resolver", Endpoint: endpoint}},
		Domains:  encdns.Domains,
		Rounds:   10,
		Interval: time.Millisecond,
		Clock:    encdns.WallClock{},
	}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		log.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	samples := results.QuerySamples("loopback", "loopback-resolver")
	av := results.Availability()
	fmt.Printf("\n%d live queries: %d ok, %d errors\n", av.Successes+av.Errors, av.Successes, av.Errors)
	fmt.Printf("response time over loopback: median %.2f ms, p95 %.2f ms\n",
		stats.Median(samples), stats.Quantile(samples, 0.95))
	fmt.Println("\n(the first round resolves through root → com → leaf; later rounds hit the cache)")
}
