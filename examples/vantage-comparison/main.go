// Vantage comparison: the paper's core finding made visible — anycast
// mainstream resolvers keep flat response times from every region, while
// unicast non-mainstream resolvers are fast only near home. This example
// measures a contrasting pair from all three EC2 vantages and renders the
// per-vantage distributions as boxplot charts.
//
//	go run ./examples/vantage-comparison
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"encdns"
	"encdns/internal/stats"
)

func main() {
	hosts := []string{
		"dns.google",        // global anycast (mainstream)
		"dns.quad9.net",     // global anycast (mainstream)
		"ordns.he.net",      // global ISP anycast (non-mainstream)
		"doh.ffmuc.net",     // one site in Bavaria
		"dns.twnic.tw",      // one site in Taipei
		"public.dns.iij.jp", // one site in Tokyo
	}
	var group []encdns.Resolver
	for _, r := range encdns.Resolvers() {
		for _, h := range hosts {
			if r.Host == h {
				group = append(group, r)
			}
		}
	}

	var ec2 []encdns.Vantage
	for _, v := range encdns.Vantages() {
		switch v.Name {
		case "ec2-ohio", "ec2-frankfurt", "ec2-seoul":
			ec2 = append(ec2, v)
		}
	}

	cfg := encdns.CampaignConfig{
		Vantages: ec2,
		Targets:  encdns.Targets(group),
		Domains:  encdns.Domains,
		Rounds:   50,
	}
	prober := &encdns.SimProber{Net: encdns.NewNet(encdns.NetConfig{Seed: 1})}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		log.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// One chart per vantage, identical resolver rows: the anycast rows
	// barely move, the unicast ones swing by hundreds of ms.
	for _, v := range ec2 {
		chart := encdns.BuildChart(results, "Resolvers from "+v.Name, group, v.Name)
		if err := chart.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Spell out the spread statistic the paper's conclusion rests on.
	fmt.Println("Median response time by vantage (ms):")
	fmt.Printf("%-20s %12s %12s %12s %10s\n", "resolver", "ohio", "frankfurt", "seoul", "spread")
	for _, r := range group {
		var ms []float64
		for _, v := range ec2 {
			ms = append(ms, stats.Median(results.QuerySamples(v.Name, r.Host)))
		}
		spread := stats.Max(ms) - stats.Min(ms)
		fmt.Printf("%-20s %12.1f %12.1f %12.1f %10.1f\n", r.Host, ms[0], ms[1], ms[2], spread)
	}
}
