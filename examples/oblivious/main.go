// Oblivious DoH: the privacy construction behind the odoh-target-* rows
// of the paper's appendix. This example stands up a target resolver and a
// relay in-process and resolves through both, then demonstrates the
// privacy property: the relay transports the query but never sees the
// name, and the target answers it without learning which client asked.
//
//	go run ./examples/oblivious
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"encdns/internal/authdns"
	"encdns/internal/dnswire"
	"encdns/internal/odoh"
	"encdns/internal/resolver"
)

func main() {
	// Target: a real recursive resolver behind an ODoH decryption layer.
	hierarchy := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{
		Exchange: hierarchy.Registry,
		Roots:    hierarchy.RootServers,
		Cache:    resolver.NewCache(4096, nil),
	}
	key, err := odoh.NewTargetKey(1)
	if err != nil {
		log.Fatal(err)
	}
	targetMux := http.NewServeMux()
	targetMux.Handle(odoh.DefaultPath, &odoh.TargetHandler{Key: key, DNS: rec})
	target := httptest.NewTLSServer(targetMux)
	defer target.Close()

	// Relay: forwards opaque blobs; we capture what it can observe.
	var observed [][]byte
	relayInner := &odoh.RelayHandler{Client: target.Client()}
	relayMux := http.NewServeMux()
	relayMux.Handle(odoh.DefaultPath, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		observed = append(observed, body)
		r.Body = io.NopCloser(bytes.NewReader(body))
		relayInner.ServeHTTP(w, r)
	}))
	relay := httptest.NewTLSServer(relayMux)
	defer relay.Close()

	// Client: fetch the target's key config, then query through the relay.
	ctx := context.Background()
	cfg, err := odoh.FetchConfig(ctx, target.Client(), target.URL+odoh.DefaultPath)
	if err != nil {
		log.Fatal(err)
	}
	targetURL, _ := url.Parse(target.URL)
	client := &odoh.Client{
		HTTP:       relay.Client(),
		Relay:      relay.URL + odoh.DefaultPath,
		TargetHost: targetURL.Host,
		TargetPath: odoh.DefaultPath,
		Config:     cfg,
	}

	const domain = "wikipedia.com"
	resp, err := client.Query(ctx, domain, dnswire.TypeA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved %s obliviously: %s (rcode %s)\n",
		domain, resp.Answers[0].Data, resp.Header.RCode)

	// The privacy check: the relay transported the query but the domain
	// never appeared in anything it saw.
	leaked := false
	for _, body := range observed {
		if bytes.Contains(body, []byte("wikipedia")) {
			leaked = true
		}
	}
	fmt.Printf("relay observed %d message(s); plaintext domain visible: %v\n",
		len(observed), leaked)
	fmt.Println("\nthe relay knows WHO asked (the client connected to it);")
	fmt.Println("the target knows WHAT was asked (it decrypted the query);")
	fmt.Println("neither party knows both — that is the ODoH split.")
}
