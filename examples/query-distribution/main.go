// Query distribution: the system the paper's measurements are meant to
// inform (§2.2, §5 — "ensuring that queries are distributed across
// multiple encrypted resolvers"). This example replays a Zipf browsing
// workload through five distribution strategies over a pool of measured
// resolvers and prints the performance/privacy trade-off each one makes.
//
//	go run ./examples/query-distribution
package main

import (
	"context"
	"fmt"
	"log"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/distribute"
	"encdns/internal/experiment"
	"encdns/internal/netsim"
	"encdns/internal/report"
	"os"
)

func main() {
	// A realistic pool from the paper's population: two mainstream
	// anycast resolvers plus three non-mainstream alternatives.
	hosts := []string{
		"dns.google", "dns.quad9.net",
		"ordns.he.net", "freedns.controld.com", "dns0.eu",
	}
	var pool []dataset.Resolver
	for _, h := range hosts {
		r, ok := dataset.ResolverByHost(h)
		if !ok {
			log.Fatalf("unknown resolver %s", h)
		}
		pool = append(pool, r)
	}
	vantage, _ := dataset.VantageByName(dataset.VantageOhio)
	targets := experiment.Targets(pool)
	prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: 1})}

	workload := distribute.SyntheticWorkload(150, 1500, 7)
	fmt.Printf("workload: %d lookups over %d distinct domains (Zipf), from %s\n\n",
		len(workload.Sequence), len(workload.Domains), vantage.Name)

	n := len(targets)
	strategies := []distribute.Strategy{
		distribute.Single{Index: 0},
		distribute.RoundRobin{N: n},
		distribute.NewRandom(n, 2),
		distribute.HashDomain{N: n},
		distribute.NewRace(n, 2, 3),
	}

	tbl := &report.Table{
		Title: "Distribution strategies: performance vs privacy",
		Headers: []string{"Strategy", "Median (ms)", "P95 (ms)", "Fail %",
			"Queries", "Max domain share", "Entropy (bits)"},
	}
	ctx := context.Background()
	for _, s := range strategies {
		d := &distribute.Distributor{
			Targets: targets, Vantage: vantage, Prober: prober, Strategy: s,
		}
		r := distribute.Evaluate(ctx, d, workload)
		tbl.AddRow(r.Strategy,
			fmt.Sprintf("%.1f", r.MedianMs),
			fmt.Sprintf("%.1f", r.P95Ms),
			fmt.Sprintf("%.2f", 100*r.FailureRate),
			fmt.Sprintf("%d", r.QueriesSent),
			fmt.Sprintf("%.2f", r.MaxDomainShare),
			fmt.Sprintf("%.2f", r.EntropyBits),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`
reading the table:
  max domain share = fraction of your distinct domains the busiest
                     resolver saw (1.00 = full profile in one place)
  entropy          = spread of your profile across resolvers (higher =
                     more fragmented, harder to reassemble)
hash-domain is the K-resolver construction: each domain pins to one
resolver, so no single operator sees more than ~1/N of your browsing.`)
}
