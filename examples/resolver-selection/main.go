// Resolver selection: the paper's motivating application (§1). Browsers
// offer only a few mainstream resolvers; this example measures the whole
// public population from a chosen vantage point and reports the fastest
// non-mainstream alternatives that perform within a budget of the best
// mainstream option — the "viable alternatives" of §6.
//
//	go run ./examples/resolver-selection            # from the Chicago homes
//	go run ./examples/resolver-selection ec2-seoul  # from Seoul
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"encdns"
	"encdns/internal/stats"
)

func main() {
	vantageName := "chicago-home-1"
	if len(os.Args) > 1 {
		vantageName = os.Args[1]
	}
	var vantage encdns.Vantage
	found := false
	for _, v := range encdns.Vantages() {
		if v.Name == vantageName {
			vantage, found = v, true
		}
	}
	if !found {
		log.Fatalf("unknown vantage %q", vantageName)
	}

	cfg := encdns.CampaignConfig{
		Vantages: []encdns.Vantage{vantage},
		Targets:  encdns.Targets(encdns.Resolvers()),
		Domains:  encdns.Domains,
		Rounds:   30,
	}
	prober := &encdns.SimProber{Net: encdns.NewNet(encdns.NetConfig{Seed: 1})}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		log.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	type ranked struct {
		host       string
		median     float64
		mainstream bool
		errors     int
	}
	av := results.Availability()
	var all []ranked
	bestMainstream := math.Inf(1)
	for _, r := range encdns.Resolvers() {
		med := stats.Median(results.QuerySamples(vantage.Name, r.Host))
		if math.IsNaN(med) {
			continue
		}
		all = append(all, ranked{r.Host, med, r.Mainstream, av.ByResolver[r.Host]})
		if r.Mainstream && med < bestMainstream {
			bestMainstream = med
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].median < all[j].median })

	fmt.Printf("From %s, the best mainstream resolver answers in %.1f ms (median).\n",
		vantage.Name, bestMainstream)
	fmt.Printf("Non-mainstream resolvers within 1.5x of that budget:\n\n")
	n := 0
	for _, r := range all {
		if r.mainstream || r.median > 1.5*bestMainstream {
			continue
		}
		n++
		fmt.Printf("  %2d. %-42s %6.1f ms  (%d errors)\n", n, r.host, r.median, r.errors)
	}
	if n == 0 {
		fmt.Println("  (none — the mainstream resolvers are unbeatable from here)")
	}
	fmt.Printf("\n%d of %d measured resolvers are viable alternatives from this vantage.\n", n, len(all))
}
