// Command dnsdig is a dig-style DNS query tool speaking every measured
// transport — the client half of the paper's §3.1 methodology ("we
// performed dig queries to the resolvers").
//
// Servers are scheme-addressed transport endpoints: udp:// (default for
// bare host:port), tcp://, tls://, and https://. The legacy -proto flag
// still selects the scheme for bare addresses.
//
//	dnsdig -server 127.0.0.1:5353 google.com A
//	dnsdig -server https://127.0.0.1:8443/dns-query -cacert /tmp/dohserver-ca.pem google.com
//	dnsdig -server tls://127.0.0.1:8853 -insecure wikipedia.com AAAA
//	dnsdig -server tcp://9.9.9.9:53 -retries 1 example.org
//	dnsdig -trace -server tls://127.0.0.1:8853 -insecure example.org
//	dnsdig -trace -roots 198.18.0.1:53,198.18.0.2:53 www.amazon.com
//	dnsdig -infra -roots 198.41.0.4:53,199.9.14.201:53 example.org
//
// -trace has two modes. With -roots it resolves iteratively from the
// given root servers over Do53, printing each referral step like dig
// +trace. Without -roots it queries -server normally and prints the
// per-attempt span tree (dial, TLS handshake, write, first byte) the
// transport recorded for the exchange.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"encdns/internal/cluster"
	"encdns/internal/dialer"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/keyhash"
	"encdns/internal/loadgen"
	"encdns/internal/obs"
	"encdns/internal/resolver"
	"encdns/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnsdig:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dnsdig", flag.ContinueOnError)
	var (
		server   = fs.String("server", "127.0.0.1:53", "scheme-addressed server endpoint (udp://, tcp://, tls://, https://; bare host:port follows -proto)")
		proto    = fs.String("proto", "do53", "scheme for bare -server addresses: do53 (udp), dot (tls), or doh (https)")
		caCert   = fs.String("cacert", "", "PEM file with a CA to trust for TLS transports")
		insecure = fs.Bool("insecure", false, "skip TLS certificate verification")
		timeout  = fs.Duration("timeout", 5*time.Second, "query timeout")
		retries  = fs.Int("retries", 3, "total exchange attempts (shared transport retry policy)")
		chain    = fs.String("chain", "", "dialer-chain prefix for -server, e.g. \"split:3|tlsfrag:sni\" (layers: split:N, tlsfrag:sni|N, delay:DUR[:every])")
		eyeballs = fs.Bool("eyeballs", false, "resolve every A/AAAA address of the server host and race address families with a staggered start (RFC 8305)")
		stagger  = fs.Duration("stagger", 0, "happy-eyeballs attempt stagger; 0 uses the RFC 8305 default (250ms)")
		short    = fs.Bool("short", false, "print only the answer RDATA")
		trace    = fs.Bool("trace", false, "with -roots: iterate from the roots printing each step; without: print the query's span tree")
		infra    = fs.Bool("infra", false, "resolve via the latency-aware recursive engine (requires -roots) and dump the per-server SRTT/penalty table")
		roots    = fs.String("roots", "", "comma-separated root server addresses for referral -trace / -infra")
		gluePort = fs.Int("glue-port", 53, "port appended to glue addresses during -trace")

		ring      = fs.Bool("ring", false, "cluster debug mode: print ring ownership, per-peer health, and the replica set for the query name (requires -peers)")
		peers     = fs.String("peers", "", "comma-separated cluster peer endpoints for -ring, spelled exactly as the cluster's -peers flags spell them")
		clusterID = fs.String("cluster-id", "encdns", "cluster identity for -ring health probes")
		replicas  = fs.Int("replicas", 2, "hot-set copies beyond the owner, for the -ring replica-set column")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: dnsdig [flags] name [type]")
	}
	name := fs.Arg(0)
	qtype := dnswire.TypeA
	if fs.NArg() >= 2 {
		t, ok := dnswire.ParseType(strings.ToUpper(fs.Arg(1)))
		if !ok {
			return fmt.Errorf("unknown query type %q", fs.Arg(1))
		}
		qtype = t
	}
	if err := dnswire.ValidateName(name); err != nil {
		return fmt.Errorf("invalid name %q: %w", name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *ring {
		if *peers == "" {
			return fmt.Errorf("-ring requires -peers (the cluster's peer endpoints)")
		}
		return runRing(ctx, w, name, qtype, strings.Split(*peers, ","), *clusterID, *replicas, *timeout)
	}
	if *infra {
		if *roots == "" {
			return fmt.Errorf("-infra requires -roots (the engine measures per-nameserver RTTs while walking referrals)")
		}
		return runInfra(ctx, w, name, qtype, strings.Split(*roots, ","), *timeout)
	}
	if *trace && *roots != "" {
		return runTrace(ctx, w, name, qtype, strings.Split(*roots, ","), *timeout, *gluePort)
	}

	tlsCfg, err := tlsConfig(*caCert, *insecure)
	if err != nil {
		return err
	}
	// Shared target grammar (loadgen.ParseTarget): the same -server /
	// -proto spelling works in dnsload, dnsmeasure, and here.
	endpoint, err := loadgen.ParseTarget(*server, *proto)
	if err != nil {
		return err
	}
	spec := endpoint.String()
	if *chain != "" {
		// -chain prepends layers to whatever the -server spec already
		// carries; transport.ParseChain validates the combination.
		spec = *chain + "|" + spec
	}
	opts := transport.Options{
		TLS:     tlsCfg,
		Timeout: *timeout,
		Retry:   &transport.RetryPolicy{MaxAttempts: *retries},
	}
	if *eyeballs {
		opts.Resolve = dialer.NetResolve(nil)
		opts.Stagger = *stagger
	}
	ex, err := transport.Dial(spec, opts)
	if err != nil {
		return err
	}
	defer ex.Close()

	var tr *obs.Trace
	if *trace {
		ctx, tr = obs.StartTrace(ctx, fmt.Sprintf("dnsdig %s %s via %s", name, qtype, spec))
	}
	q := dnswire.NewQuery(dns53.NewID(), name, qtype)
	start := time.Now()
	resp, err := ex.Exchange(ctx, q)
	elapsed := time.Since(start)
	if tr != nil {
		tr.Finish()
	}
	if err != nil {
		if tr != nil {
			fmt.Fprint(w, tr.String())
		}
		return err
	}
	if *short {
		for _, rr := range resp.Answers {
			fmt.Fprintln(w, rr.Data)
		}
		return nil
	}
	fmt.Fprint(w, resp)
	fmt.Fprintf(w, ";; Query time: %d msec\n;; SERVER: %s (%s)\n", elapsed.Milliseconds(), spec, endpoint.Scheme)
	if tr != nil {
		fmt.Fprintln(w, ";; Trace:")
		fmt.Fprint(w, tr.String())
	}
	return nil
}

func tlsConfig(caCert string, insecure bool) (*tls.Config, error) {
	cfg := &tls.Config{}
	if insecure {
		cfg.InsecureSkipVerify = true
	}
	if caCert != "" {
		pemBytes, err := os.ReadFile(caCert)
		if err != nil {
			return nil, fmt.Errorf("reading CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return nil, fmt.Errorf("no certificates in %s", caCert)
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}

// runInfra resolves name with the latency-aware recursive engine over real
// Do53 sockets and prints the answers followed by the per-server SRTT and
// penalty table the walk accumulated — the measurement tool explaining
// *why* a resolver path was fast or slow, one server at a time.
func runInfra(ctx context.Context, w io.Writer, name string, qtype dnswire.Type, roots []string, timeout time.Duration) error {
	for i := range roots {
		roots[i] = strings.TrimSpace(roots[i])
	}
	pool := transport.NewPool(transport.Options{Timeout: timeout})
	defer pool.Close()
	inf := resolver.NewInfra(nil)
	rec := &resolver.Recursive{
		Exchange: pool,
		Roots:    roots,
		Cache:    resolver.NewCache(4096, nil),
		Infra:    inf,
		Hedge:    true,
	}
	defer rec.Close()
	start := time.Now()
	rrs, rcode, err := rec.Resolve(ctx, name, qtype, 0)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, ";; status: %s, %d answer(s), %d msec\n", rcode, len(rrs), elapsed.Milliseconds())
	for _, rr := range rrs {
		fmt.Fprintln(w, rr)
	}
	fmt.Fprintln(w, ";; infra cache (selection order — score = SRTT + decayed failure penalty):")
	fmt.Fprintf(w, ";; %-24s %10s %10s %10s %10s %5s %5s\n",
		"SERVER", "SRTT", "RTTVAR", "PENALTY", "SCORE", "OBS", "FAIL")
	for _, s := range inf.Snapshot() {
		fmt.Fprintf(w, ";; %-24s %10s %10s %10s %10s %5d %5d\n",
			s.Server, fmtDur(s.SRTT), fmtDur(s.RTTVar), fmtDur(s.Penalty), fmtDur(s.Score),
			s.Observations, s.Failures)
	}
	return nil
}

// fmtDur renders sub-second durations at microsecond precision so the
// infra table columns stay aligned and comparable.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// runRing rebuilds a cluster's consistent-hash ring from its peer list
// (ring layout depends only on the peer ID strings, so any observer that
// spells them the same way derives the same ring), probes each peer's
// health over the cluster marker protocol, and prints where the query
// name lives — the -infra table's sibling for cluster mode.
func runRing(ctx context.Context, w io.Writer, name string, qtype dnswire.Type, peers []string, clusterID string, replicas int, timeout time.Duration) error {
	for i := range peers {
		peers[i] = strings.TrimSpace(peers[i])
	}
	r := cluster.NewRing(peers, 0)
	if r.Len() == 0 {
		return fmt.Errorf("-ring: no usable peers")
	}
	shares := r.Shares()

	noRetry := transport.NoRetry()
	pool := transport.NewPool(transport.Options{
		Timeout: timeout,
		Retry:   &noRetry,
	})
	defer pool.Close()
	fmt.Fprintf(w, ";; cluster ring: %d peers, %d vnodes/peer, cluster-id %q\n",
		r.Len(), cluster.DefaultVNodes, clusterID)
	fmt.Fprintf(w, ";; %-28s %-10s %10s %8s\n", "PEER", "STATE", "RTT", "SHARE")
	for _, p := range r.Peers() {
		state, rtt := probePeer(ctx, pool, p, clusterID)
		fmt.Fprintf(w, ";; %-28s %-10s %10s %7.1f%%\n", p, state, fmtDur(rtt), 100*shares[p])
	}

	hash := keyhash.Key(name, uint16(qtype))
	set := r.Successors(hash, replicas+1)
	fmt.Fprintf(w, ";; key %s/%s -> hash %#016x\n", dnswire.CanonicalName(name), qtype, hash)
	fmt.Fprintf(w, ";; owner:    %s\n", set[0])
	if len(set) > 1 {
		fmt.Fprintf(w, ";; replicas: %s\n", strings.Join(set[1:], ", "))
	} else {
		fmt.Fprintln(w, ";; replicas: (none — cluster smaller than replica set)")
	}
	return nil
}

// probePeer sends one health probe and classifies the peer's state the
// way the cluster's own membership layer would see the exchange.
func probePeer(ctx context.Context, pool *transport.Pool, peer, clusterID string) (string, time.Duration) {
	start := time.Now()
	resp, err := pool.Exchange(ctx, cluster.ProbeQuery(clusterID), peer)
	rtt := time.Since(start)
	switch {
	case err != nil:
		return "down", rtt
	case resp.Header.RCode == dnswire.RCodeRefused:
		return "foreign", rtt // alive, but a different cluster-id
	default:
		return "up", rtt
	}
}

// runTrace walks the delegation chain from the roots over Do53, printing
// each step — dig +trace.
func runTrace(ctx context.Context, w io.Writer, name string, qtype dnswire.Type, roots []string, timeout time.Duration, gluePort int) error {
	client := &dns53.Client{Timeout: timeout}
	servers := roots
	zone := "."
	for depth := 0; depth < 16; depth++ {
		if len(servers) == 0 {
			return fmt.Errorf("no servers to query for %s", zone)
		}
		server := strings.TrimSpace(servers[0])
		q := dnswire.NewQuery(dns53.NewID(), name, qtype)
		q.Header.RD = false
		resp, err := client.Exchange(ctx, q, server)
		if err != nil {
			if len(servers) > 1 {
				servers = servers[1:]
				continue
			}
			return fmt.Errorf("querying %s: %w", server, err)
		}
		fmt.Fprintf(w, ";; zone %s via %s: %s, %d answer(s), %d authority\n",
			zone, server, resp.Header.RCode, len(resp.Answers), len(resp.Authority))
		if len(resp.Answers) > 0 || resp.Header.RCode == dnswire.RCodeNXDomain {
			for _, rr := range resp.Answers {
				fmt.Fprintln(w, rr)
			}
			if resp.Header.RCode != dnswire.RCodeSuccess {
				fmt.Fprintf(w, ";; final status: %s\n", resp.Header.RCode)
			}
			return nil
		}
		// Referral: print the NS set and follow the glue.
		var next []string
		var nextZone string
		for _, rr := range resp.Authority {
			fmt.Fprintln(w, rr)
			if rr.Type == dnswire.TypeNS {
				nextZone = dnswire.CanonicalName(rr.Name)
			}
		}
		for _, rr := range resp.Additional {
			if a, ok := rr.Data.(*dnswire.A); ok {
				next = append(next, fmt.Sprintf("%s:%d", a.Addr, gluePort))
			}
		}
		if len(next) == 0 {
			return fmt.Errorf("glueless referral for %s; cannot continue", nextZone)
		}
		servers, zone = next, nextZone
	}
	return fmt.Errorf("referral chain too deep")
}
