package main

import (
	"bytes"
	"encoding/pem"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encdns/internal/authdns"
	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/doh"
	"encdns/internal/dot"
	"encdns/internal/resolver"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// startDo53 serves a handler over loopback UDP+TCP and returns the addr.
func startDo53(t *testing.T, h dns53.Handler) string {
	t.Helper()
	srv := &dns53.Server{Handler: h}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(srv.Shutdown)
	return pc.LocalAddr().String()
}

func static() dns53.Handler {
	return dns53.Static(map[string][]net.IP{
		"google.com.": {net.ParseIP("142.250.64.78")},
	})
}

func TestDo53Query(t *testing.T) {
	addr := startDo53(t, static())
	out, err := capture(t, "-server", addr, "google.com", "A")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NOERROR", "142.250.64.78", "Query time", "(udp)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestSchemeAddressedServer checks that an explicit scheme on -server
// selects the transport regardless of -proto.
func TestSchemeAddressedServer(t *testing.T) {
	addr := startDo53(t, static())
	out, err := capture(t, "-server", "udp://"+addr, "-proto", "doh", "google.com")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"142.250.64.78", "(udp)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestShortOutput(t *testing.T) {
	addr := startDo53(t, static())
	out, err := capture(t, "-server", addr, "-short", "google.com")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "142.250.64.78" {
		t.Errorf("short output = %q", out)
	}
}

func TestDoTQuery(t *testing.T) {
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: static()}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })

	// Write the CA for -cacert.
	caPath := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(caPath, pemEncode(ca), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "-proto", "dot", "-server", ln.Addr().String(),
		"-cacert", caPath, "google.com")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "142.250.64.78") {
		t.Errorf("answer missing:\n%s", out)
	}

	// The same server reached through an explicit tls:// scheme.
	out, err = capture(t, "-server", "tls://"+ln.Addr().String(),
		"-cacert", caPath, "google.com")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"142.250.64.78", "(tls)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func pemEncode(ca *certs.CA) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
}

func TestDoHQueryInsecure(t *testing.T) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{Exchange: h.Registry, Roots: h.RootServers,
		Cache: resolver.NewCache(256, nil), RNGSeed: 1}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	ca, _ := certs.NewCA(0)
	tlsCfg, _ := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux, TLSConfig: tlsCfg}
	go hs.ServeTLS(ln, "", "")
	t.Cleanup(func() { hs.Close() })

	out, err := capture(t, "-proto", "doh", "-insecure",
		"-server", "https://"+ln.Addr().String()+doh.DefaultPath, "wikipedia.com")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "208.80.154.232") {
		t.Errorf("answer missing:\n%s", out)
	}
}

// startLoopbackHierarchy serves a three-level delegation chain (root →
// com. → example.com.) over real loopback UDP sockets, one 127.0.0.x
// address per name server on a shared random port. It returns the root
// server address and the shared port.
func startLoopbackHierarchy(t *testing.T) (rootAddr string, port int) {
	t.Helper()
	leafIP := netip.MustParseAddr("127.0.0.3")
	comIP := netip.MustParseAddr("127.0.0.2")
	rootIP := netip.MustParseAddr("127.0.0.1")

	root := authdns.NewZone(".")
	root.SetSOA("a.root.test.", "root.test.", 1, 300)
	root.Delegate("com.", map[string]netip.Addr{"ns.com.": comIP})

	com := authdns.NewZone("com.")
	com.SetSOA("ns.com.", "h.com.", 1, 300)
	com.Delegate("example.com.", map[string]netip.Addr{"ns.example.com.": leafIP})

	leaf := authdns.NewZone("example.com.")
	leaf.SetSOA("ns.example.com.", "h.example.com.", 1, 300)
	leaf.AddA("www.example.com.", 300, netip.MustParseAddr("192.0.2.80"))

	// Bind the same random port on all three loopback addresses.
	rootPC, err := net.ListenPacket("udp", rootIP.String()+":0")
	if err != nil {
		t.Fatal(err)
	}
	port = rootPC.LocalAddr().(*net.UDPAddr).Port
	comPC, err := net.ListenPacket("udp", fmt.Sprintf("%s:%d", comIP, port))
	if err != nil {
		t.Skipf("cannot bind %s:%d: %v", comIP, port, err)
	}
	leafPC, err := net.ListenPacket("udp", fmt.Sprintf("%s:%d", leafIP, port))
	if err != nil {
		t.Skipf("cannot bind %s:%d: %v", leafIP, port, err)
	}
	for _, pair := range []struct {
		pc net.PacketConn
		z  *authdns.Zone
	}{{rootPC, root}, {comPC, com}, {leafPC, leaf}} {
		srv := &dns53.Server{Handler: pair.z}
		go srv.ServeUDP(pair.pc)
		t.Cleanup(srv.Shutdown)
	}
	return fmt.Sprintf("%s:%d", rootIP, port), port
}

// TestTraceOverRealUDP serves the full authoritative hierarchy over real
// loopback UDP sockets (one 127.0.0.x address per name server, shared
// port) and walks it with -trace — dig +trace against our own root.
func TestTraceOverRealUDP(t *testing.T) {
	rootAddr, port := startLoopbackHierarchy(t)
	out, err := capture(t, "-trace",
		"-roots", rootAddr,
		"-glue-port", fmt.Sprintf("%d", port),
		"www.example.com")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"zone . via", "zone com.", "zone example.com.", "192.0.2.80"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestSpanTrace queries an in-process DoT server with -trace (and no
// -roots): the output must carry the span tree with the dial, TLS
// handshake, and exchange phases the transport recorded.
func TestSpanTrace(t *testing.T) {
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: static()}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })
	caPath := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(caPath, pemEncode(ca), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, "-trace", "-server", "tls://"+ln.Addr().String(),
		"-cacert", caPath, "google.com")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"142.250.64.78",
		";; Trace:",
		"dnsdig google.com A via tls://",
		"attempt (scheme=tls)",
		"dial",
		"tls-handshake",
		"exchange",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("span trace missing %q:\n%s", want, out)
		}
	}
}

// TestInfraDump resolves through the latency-aware engine against a real
// loopback root and checks the per-server SRTT/penalty table comes back
// with the queried server in it.
func TestInfraDump(t *testing.T) {
	z := authdns.NewZone(".")
	z.SetSOA("a.root.test.", "root.test.", 1, 300)
	z.AddA("www.example.com.", 300, netip.MustParseAddr("192.0.2.80"))
	addr := startDo53(t, z)

	out, err := capture(t, "-infra", "-roots", addr, "www.example.com")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"192.0.2.80",
		";; status: NOERROR",
		";; infra cache",
		"SRTT",
		addr, // the root must appear in the infra table
	} {
		if !strings.Contains(out, want) {
			t.Errorf("infra output missing %q:\n%s", want, out)
		}
	}
}

func TestInfraRequiresRoots(t *testing.T) {
	if _, err := capture(t, "-infra", "example.com"); err == nil {
		t.Fatal("-infra without -roots accepted")
	}
}

func TestArgErrors(t *testing.T) {
	cases := [][]string{
		{},                                // no name
		{"-proto", "carrier-pigeon", "x"}, // bad proto... needs server? checked after parse
		{"bad..name"},
		{"example.com", "WAT"},
		{"-cacert", "/nonexistent/ca.pem", "example.com"},
	}
	for _, args := range cases {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestChainFlag queries a real DoT server through a -chain dialer: the
// ClientHello goes out fragmented (the server reassembles it per RFC
// 8446), the answer comes back, and the SERVER line names the chain.
func TestChainFlag(t *testing.T) {
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: static()}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })
	caPath := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(caPath, pemEncode(ca), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, "-chain", "split:3|tlsfrag:sni",
		"-server", "tls://"+ln.Addr().String(), "-cacert", caPath,
		"-eyeballs", "google.com")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"142.250.64.78", "split:3|tlsfrag:sni|tls://"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := capture(t, "-chain", "warp:9", "-server", "tls://"+ln.Addr().String(), "google.com"); err == nil {
		t.Error("bogus -chain layer accepted")
	}
}
