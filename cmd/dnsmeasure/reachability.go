package main

import (
	"context"
	"fmt"
	"io"
	"net"

	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/dot"
	"encdns/internal/experiment"
	"encdns/internal/netsim"
	"encdns/internal/transport"
)

// runReachability is the -reachability scenario: a deterministic,
// in-process demonstration of the paper's reachability axis. Three
// mainstream DoT endpoints are served on a byte-level VirtualNet and
// probed from four simulated vantages — an open network, a
// single-segment SNI censor, a middlebox that drops large first TLS
// records, and a blackhole. Every (vantage, endpoint) pair is classified
// reachable-plain / reachable-evasion / unreachable; the evasion ladder
// is the transport chain grammar (tlsfrag:, split:), so a
// reachable-evasion verdict names the chain that got through.
func runReachability(w io.Writer) error {
	vn := netsim.NewVirtualNet()
	ca, err := certs.NewCA(0)
	if err != nil {
		return err
	}
	hosts := []string{"dns.google", "one.one.one.one", "dns.quad9.net"}
	var endpoints []string
	var shutdowns []func()
	defer func() {
		for _, stop := range shutdowns {
			stop()
		}
	}()
	for _, host := range hosts {
		srvTLS, err := ca.ServerConfig([]string{host}, nil)
		if err != nil {
			return err
		}
		inner := &dns53.Server{Handler: dns53.Static(map[string][]net.IP{
			"example.com.": {net.ParseIP("192.0.2.1")},
		})}
		ln, err := vn.Listen(host + ":853")
		if err != nil {
			return err
		}
		go (&dot.Server{DNS: inner, TLS: srvTLS}).Serve(ln)
		shutdowns = append(shutdowns, func() { ln.Close(); inner.Shutdown() })
		endpoints = append(endpoints, "tls://"+host+":853")
	}

	tlsCfg := ca.ClientConfig("")
	tlsCfg.ServerName = ""
	results, err := experiment.RunReachability(context.Background(), experiment.ReachabilityConfig{
		Net: vn,
		Vantages: []experiment.VantagePolicy{
			{Name: "open-net"},
			{Name: "sni-censor", Middleboxes: []netsim.Middlebox{
				&netsim.RSTOnSNI{Blocked: hosts},
			}},
			{Name: "large-record-filter", Middleboxes: []netsim.Middlebox{
				&netsim.DropLargeRecord{MaxBytes: 64},
			}},
			{Name: "blackhole", Middleboxes: []netsim.Middlebox{&netsim.Blackhole{}}},
		},
		Endpoints: endpoints,
		Options:   transport.Options{TLS: tlsCfg},
	})
	if err != nil {
		return err
	}
	if err := experiment.RenderReachability(w, results); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "\nclasses: reachable-plain (ordinary dial works), reachable-evasion (only a dialer chain gets through), unreachable (nothing works)")
	return err
}
