package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Config is the measurement-suite configuration file (§3.1: "Clients ...
// provide a list of DoH resolvers they wish to perform measurements
// with"). Flags given on the command line override file values.
type Config struct {
	// Resolvers lists hostnames from the built-in population, full
	// https:// URLs, or the shortcuts "all"/"mainstream".
	Resolvers []string `json:"resolvers"`
	// Domains to query each round.
	Domains []string `json:"domains"`
	// Vantage point name (sim mode).
	Vantage string `json:"vantage"`
	// Mode is "sim" or "live".
	Mode string `json:"mode"`
	// Rounds of measurement.
	Rounds int `json:"rounds"`
	// Interval between rounds, as a Go duration string ("8h", "90m").
	Interval string `json:"interval"`
	// Seed for simulated campaigns.
	Seed uint64 `json:"seed"`
	// Output is the JSON Lines result path.
	Output string `json:"output"`
}

// LoadConfig reads and validates a config file.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading config: %w", err)
	}
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("parsing config %s: %w", path, err)
	}
	if c.Interval != "" {
		if _, err := time.ParseDuration(c.Interval); err != nil {
			return nil, fmt.Errorf("config interval %q: %w", c.Interval, err)
		}
	}
	if c.Mode != "" && c.Mode != "sim" && c.Mode != "live" {
		return nil, fmt.Errorf("config mode %q: want sim or live", c.Mode)
	}
	if c.Rounds < 0 {
		return nil, fmt.Errorf("config rounds %d: must be non-negative", c.Rounds)
	}
	return &c, nil
}

// apply folds config values into flag-value destinations that are still
// at their defaults (explicit flags win). set reports which flags the
// user passed.
func (c *Config) apply(set map[string]bool, resolvers, domains, vantage, mode, output *string,
	rounds *int, interval *time.Duration, seed *uint64) {
	if len(c.Resolvers) > 0 && !set["resolvers"] {
		*resolvers = strings.Join(c.Resolvers, ",")
	}
	if len(c.Domains) > 0 && !set["domains"] {
		*domains = strings.Join(c.Domains, ",")
	}
	if c.Vantage != "" && !set["vantage"] {
		*vantage = c.Vantage
	}
	if c.Mode != "" && !set["mode"] {
		*mode = c.Mode
	}
	if c.Output != "" && !set["o"] {
		*output = c.Output
	}
	if c.Rounds > 0 && !set["rounds"] {
		*rounds = c.Rounds
	}
	if c.Interval != "" && !set["interval"] {
		d, _ := time.ParseDuration(c.Interval) // validated by LoadConfig
		*interval = d
	}
	if c.Seed != 0 && !set["seed"] {
		*seed = c.Seed
	}
}
