package main

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"encdns/internal/core"
)

// capture runs run() with stdout redirected to a pipe and returns output.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- out
	}()
	runErr := run(args, w)
	w.Close()
	out := <-done
	r.Close()
	return string(out), runErr
}

func TestListVantages(t *testing.T) {
	out, err := capture(t, "-list-vantages")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chicago-home-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul", "home", "datacenter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestListResolvers(t *testing.T) {
	out, err := capture(t, "-list-resolvers")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dns.google") || !strings.Contains(out, "[mainstream]") {
		t.Errorf("resolver list incomplete:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n != 75 {
		t.Errorf("listed %d resolvers, want 75", n)
	}
}

func TestSimCampaignSummary(t *testing.T) {
	out, err := capture(t, "-resolvers", "dns.google,ordns.he.net",
		"-vantage", "ec2-ohio", "-rounds", "10")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Response times from ec2-ohio", "dns.google", "ordns.he.net", "Median"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWritesJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	_, err := capture(t, "-resolvers", "dns.google", "-rounds", "5", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.ReadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 5 rounds × (3 domains + 1 ping).
	if rs.Len() != 20 {
		t.Errorf("records = %d, want 20", rs.Len())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-resolvers", "not.a.known.host"},
		{"-resolvers", ""},
		{"-vantage", "mars"},
		{"-mode", "quantum"},
		{"-domains", ""},
	}
	for _, args := range cases {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestMainstreamShortcut(t *testing.T) {
	out, err := capture(t, "-resolvers", "mainstream", "-rounds", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dns.quad9.net") || !strings.Contains(out, "anycast.dns.nextdns.io") {
		t.Errorf("mainstream set missing rows:\n%s", out)
	}
}

func TestAdHocHTTPSTarget(t *testing.T) {
	// Parsing only: an https:// URL becomes an ad-hoc target. In sim mode
	// it has no model parameters (zero sites), so we just check parsing.
	targets, err := parseTargets("https://dns.example/custom-path")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || targets[0].Host != "dns.example" {
		t.Fatalf("targets = %+v", targets)
	}
	if targets[0].Endpoint != "https://dns.example/custom-path" {
		t.Errorf("endpoint = %s", targets[0].Endpoint)
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b ,, c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.json")
	outPath := filepath.Join(dir, "out.jsonl")
	conf := `{
		"resolvers": ["dns.google", "dns.quad9.net"],
		"domains": ["google.com"],
		"vantage": "ec2-seoul",
		"rounds": 4,
		"interval": "1h",
		"seed": 9,
		"output": ` + strconv.Quote(outPath) + `
	}`
	if err := os.WriteFile(path, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "-config", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ec2-seoul") || !strings.Contains(out, "dns.quad9.net") {
		t.Errorf("config not applied:\n%s", out)
	}
	rs, err := core.ReadJSONFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4*2*2 { // 4 rounds × 2 resolvers × (1 domain + 1 ping)
		t.Errorf("records = %d", rs.Len())
	}
}

func TestConfigFlagOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.json")
	conf := `{"resolvers": ["dns.google"], "vantage": "ec2-seoul", "rounds": 3}`
	if err := os.WriteFile(path, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	// Explicit -vantage beats the config value.
	out, err := capture(t, "-config", path, "-vantage", "ec2-ohio")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ec2-ohio") {
		t.Errorf("flag did not override config:\n%s", out)
	}
}

func TestConfigErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []string{
		write("bad.json", "{not json"),
		write("unknown.json", `{"surprise": true}`),
		write("badmode.json", `{"mode": "psychic"}`),
		write("badinterval.json", `{"interval": "yearly"}`),
		write("badrounds.json", `{"rounds": -3}`),
		filepath.Join(dir, "missing.json"),
	}
	for _, p := range cases {
		if _, err := LoadConfig(p); err == nil {
			t.Errorf("config %s accepted", p)
		}
	}
}

func TestProtoFlag(t *testing.T) {
	for _, proto := range []string{"doh", "dot", "do53"} {
		out, err := capture(t, "-resolvers", "dns.google", "-rounds", "5", "-proto", proto)
		if err != nil {
			t.Fatalf("proto %s: %v", proto, err)
		}
		if !strings.Contains(out, "dns.google") {
			t.Errorf("proto %s output:\n%s", proto, out)
		}
	}
	if _, err := capture(t, "-proto", "smoke-signals"); err == nil {
		t.Error("bad proto accepted")
	}
}

func TestProtoAffectsSimTiming(t *testing.T) {
	// Do53 is one round trip; fresh DoH is three. The summary medians
	// must reflect that.
	med := func(proto string) float64 {
		path := filepath.Join(t.TempDir(), proto+".jsonl")
		if _, err := capture(t, "-resolvers", "doh.la.ahadns.net", "-rounds", "40",
			"-proto", proto, "-o", path); err != nil {
			t.Fatal(err)
		}
		rs, err := core.ReadJSONFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rs.MedianResponse("ec2-ohio", "doh.la.ahadns.net")
	}
	udp, doh := med("do53"), med("doh")
	if ratio := doh / udp; ratio < 2 || ratio > 4.5 {
		t.Errorf("doh/do53 ratio = %.2f, want ~3", ratio)
	}
}

// TestReachabilityScenario runs the -reachability campaign: the report
// must classify every vantage/endpoint pair and name evasion chains.
func TestReachabilityScenario(t *testing.T) {
	out, err := capture(t, "-reachability")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Reachability by vantage",
		"open-net", "sni-censor", "large-record-filter", "blackhole",
		"reachable-plain", "reachable-evasion", "unreachable",
		"tls://dns.google:853",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The sni-censor vantage must need evasion for every endpoint.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "sni-censor") && !strings.Contains(line, "reachable-evasion") {
			t.Errorf("sni-censor row not classified as evasion: %s", line)
		}
	}
}
