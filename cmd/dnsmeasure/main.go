// Command dnsmeasure is the encrypted-DNS measurement tool: it issues
// DoH/DoT/Do53 queries (and ICMP pings, when available) to a list of
// resolvers, continuously, and writes per-query JSON records — the
// open-source tool the paper describes in §3.1.
//
// Two transports are available:
//
//   - -mode sim (default): measurements run against the calibrated model
//     of the global internet, from any of the paper's vantage points.
//     Deterministic under -seed; completes instantly.
//   - -mode live: measurements are real — the tool dials the resolver
//     endpoints with fresh connections per query and wall-clock timing.
//     (Requires network reachability to the targets.)
//
// Examples:
//
// Live targets are scheme-addressed transport endpoints (udp://, tcp://,
// tls://, https://); bare dataset hostnames pick their endpoint from the
// -proto flag.
//
//	dnsmeasure -resolvers mainstream -vantage ec2-seoul -rounds 50
//	dnsmeasure -resolvers dns.google,ordns.he.net -domains google.com -o out.jsonl
//	dnsmeasure -mode live -resolvers https://127.0.0.1:8443/dns-query -rounds 3
//	dnsmeasure -mode live -resolvers tls://127.0.0.1:8853,udp://127.0.0.1:5353 -rounds 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/loadgen"
	"encdns/internal/monitor"
	"encdns/internal/netsim"
	"encdns/internal/obs"
	"encdns/internal/report"
	"encdns/internal/stats"
	"encdns/internal/transport"

	// Registered for the -metrics-addr series set: the resolver cache
	// gauges show up on every scrape, zeroed until a resolver runs in
	// this process.
	_ "encdns/internal/resolver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnsmeasure:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("dnsmeasure", flag.ContinueOnError)
	var (
		resolvers = fs.String("resolvers", "all", "comma-separated resolver hosts/URLs, or 'all'/'mainstream'")
		domains   = fs.String("domains", strings.Join(dataset.Domains, ","), "comma-separated query names")
		mode      = fs.String("mode", "sim", "'sim' (network model) or 'live' (real network)")
		proto     = fs.String("proto", "doh", "query transport: doh, dot, or do53")
		vantage   = fs.String("vantage", dataset.VantageOhio, "vantage point name (sim mode); see -list-vantages")
		rounds    = fs.Int("rounds", 20, "measurement rounds")
		interval  = fs.Duration("interval", 8*time.Hour, "time between rounds (virtual in sim mode)")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		output    = fs.String("o", "", "write JSON Lines records to this file")
		summarize = fs.Bool("summary", true, "print per-resolver summary table")
		listV     = fs.Bool("list-vantages", false, "list vantage point names and exit")
		listR     = fs.Bool("list-resolvers", false, "list known resolver hosts and exit")
		reach     = fs.Bool("reachability", false, "run the middlebox-vantage reachability scenario (deterministic, in-process) and print the per-vantage classification")
		confPath  = fs.String("config", "", "JSON config file (flags override its values)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/obs, /debug/watch, and /debug/pprof on this address during the run")
		watch     = fs.Bool("watch", false, "continuous watchtower mode: probe forever, tracking per-target health, SLO burn alerts, and a live dashboard at /debug/watch/ui (interval defaults to 10s; stop with ^C)")
		watchPace = fs.Duration("watch-pace", 0, "real-time floor between watch rounds (sim mode: virtual time still advances one -interval per round)")
		verbose   = fs.Bool("v", false, "debug-level logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level)
	if *confPath != "" {
		conf, err := LoadConfig(*confPath)
		if err != nil {
			return err
		}
		conf.apply(set, resolvers, domains, vantage, mode, output, rounds, interval, seed)
	}

	if *listV {
		for _, v := range dataset.Vantages() {
			fmt.Fprintf(stdout, "%-18s %-11s (%.2f, %.2f)\n", v.Name, v.Access, v.Coord.Lat, v.Coord.Lon)
		}
		return nil
	}
	if *listR {
		for _, r := range dataset.Resolvers() {
			tag := ""
			if r.Mainstream {
				tag = " [mainstream]"
			}
			fmt.Fprintf(stdout, "%-42s %s%s\n", r.Host, r.Region, tag)
		}
		return nil
	}

	if *reach {
		return runReachability(stdout)
	}

	targets, err := parseTargets(*resolvers)
	if err != nil {
		return err
	}
	domainList := splitNonEmpty(*domains)
	if len(domainList) == 0 {
		return fmt.Errorf("no domains given")
	}

	protocol, err := parseProto(*proto)
	if err != nil {
		return err
	}
	var prober core.Prober
	var vantages []netsim.Vantage
	var clock netsim.Clock
	switch *mode {
	case "sim":
		v, ok := dataset.VantageByName(*vantage)
		if !ok {
			return fmt.Errorf("unknown vantage %q (try -list-vantages)", *vantage)
		}
		vantages = []netsim.Vantage{v}
		prober = &core.SimProber{
			Net:      netsim.New(netsim.Config{Seed: *seed}),
			Protocol: protocol,
		}
		clock = netsim.NewVirtualClock(netsim.CampaignEpoch)
	case "live":
		vantages = []netsim.Vantage{{Name: "local"}}
		// One scheme-addressed transport pool serves every protocol;
		// fresh connections per query, like the paper's dig runs. The
		// -proto flag picks each dataset target's endpoint scheme.
		targets = liveEndpoints(targets, *proto)
		prober = &core.LiveProber{
			Proto:     protocol,
			Transport: transport.NewPool(transport.Options{}),
		}
		clock = netsim.WallClock{}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	// Watch mode: probe continuously at a monitoring cadence (10s unless
	// -interval is explicit), feed a monitor.Tracker, and always serve
	// the introspection endpoints — that surface IS the output.
	var tracker *monitor.Tracker
	if *watch {
		if !set["interval"] {
			*interval = 10 * time.Second
		}
		if *metrics == "" {
			*metrics = "127.0.0.1:0"
		}
		tracker = monitor.New(monitor.Config{
			Now:      netsim.NowFunc(clock),
			Interval: *interval,
		})
	}

	if *metrics != "" {
		obs.RegisterRuntimeMetrics(obs.Default())
		var hopts []obs.HandlerOption
		if tracker != nil {
			hopts = append(hopts, obs.WithWatch(tracker))
		}
		bound, shutdown, err := obs.ServeHandler(*metrics, obs.NewHTTPHandler(obs.Default(), hopts...))
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer shutdown()
		logger.Info("serving introspection endpoints", "addr", bound,
			"paths", "/metrics,/debug/obs,/debug/watch,/debug/pprof")
		if tracker != nil {
			fmt.Fprintf(os.Stderr, "watchtower dashboard: http://%s/debug/watch/ui\n", bound)
		}
	}
	logger.Debug("campaign configured", "mode", *mode, "targets", len(targets),
		"domains", len(domainList), "rounds", *rounds, "watch", *watch)

	cfg := core.CampaignConfig{
		Vantages: vantages,
		Targets:  targets,
		Domains:  domainList,
		Rounds:   *rounds,
		// -watch runs forever unless -rounds was given explicitly (a
		// bounded watch, useful for smoke tests).
		Continuous: *watch && !set["rounds"],
		Pace:       *watchPace,
		Interval:   *interval,
		Clock:      clock,
		Progress: func(round, total int) {
			logger.Debug("round complete", "round", round, "total", total)
			if total >= 10 && round%(total/10) == 0 {
				fmt.Fprintf(os.Stderr, "round %d/%d\n", round, total)
			}
		},
	}
	if tracker != nil {
		cfg.Observer = tracker
	}
	if *watch && *output != "" {
		// An unbounded run cannot buffer records: stream them as JSON
		// Lines instead.
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		cfg.Sink = func(rec core.Record) error { return enc.Encode(rec) }
		cfg.DiscardResults = true
	}
	campaign, err := core.NewCampaign(cfg, prober)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, runErr := campaign.Run(ctx)
	if runErr != nil && !(*watch && errors.Is(runErr, context.Canceled)) {
		fmt.Fprintf(os.Stderr, "campaign interrupted: %v (reporting partial results)\n", runErr)
	}

	if *watch {
		rep := tracker.WatchReport()
		fmt.Fprintf(stdout, "watch stopped: %d targets tracked, %d journal events\n",
			len(rep.Targets), tracker.Journal().Len())
		if *output != "" {
			fmt.Fprintf(stdout, "streamed records to %s\n", *output)
		}
		return nil
	}

	if *output != "" {
		if err := results.WriteJSONFile(*output); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records to %s\n", results.Len(), *output)
	}
	if *summarize {
		if err := printSummary(stdout, results, vantages[0].Name, targets); err != nil {
			return err
		}
	}
	return nil
}

// parseTargets resolves the -resolvers flag: known hostnames come from the
// dataset (with their model parameters); scheme-prefixed endpoints
// (udp://, tcp://, tls://, https://) become ad-hoc live targets.
func parseTargets(spec string) ([]core.Target, error) {
	switch spec {
	case "all":
		return targetsOf(dataset.Resolvers()), nil
	case "mainstream":
		return targetsOf(dataset.Mainstream()), nil
	}
	var out []core.Target
	for _, item := range splitNonEmpty(spec) {
		if strings.Contains(item, "://") {
			// Shared target grammar (loadgen.ParseTarget): the same
			// endpoint spelling works in dnsload, dnsdig, and here.
			ep, err := loadgen.ParseTarget(item, "")
			if err != nil {
				return nil, err
			}
			out = append(out, core.Target{Host: ep.Host, Endpoint: ep.String()})
			continue
		}
		r, ok := dataset.ResolverByHost(item)
		if !ok {
			return nil, fmt.Errorf("unknown resolver %q (try -list-resolvers, or pass a scheme-prefixed endpoint like udp://, tls://, or https://)", item)
		}
		out = append(out, core.Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no resolvers given")
	}
	return out, nil
}

// liveEndpoints rewrites dataset targets' endpoints for the selected
// protocol: dataset entries carry the RFC 8484 URL, so DoT and Do53 runs
// derive tls:// and udp:// endpoints (IANA ports via the shared
// loadgen.ParseTarget grammar). Endpoints that already carry a non-https
// scheme (ad-hoc targets) pass through.
func liveEndpoints(targets []core.Target, proto string) []core.Target {
	out := make([]core.Target, len(targets))
	for i, t := range targets {
		if strings.Contains(t.Endpoint, "://") && !strings.HasPrefix(t.Endpoint, "https://") {
			out[i] = t
			continue
		}
		if proto != "doh" {
			if ep, err := loadgen.ParseTarget(t.Host, proto); err == nil {
				t.Endpoint = ep.String()
			}
		}
		out[i] = t
	}
	return out
}

// parseProto maps the -proto flag to a transport.
func parseProto(s string) (netsim.Protocol, error) {
	switch s {
	case "doh":
		return netsim.ProtoDoH, nil
	case "dot":
		return netsim.ProtoDoT, nil
	case "do53":
		return netsim.ProtoDo53, nil
	}
	return 0, fmt.Errorf("unknown proto %q (want doh, dot, or do53)", s)
}

func targetsOf(rs []dataset.Resolver) []core.Target {
	out := make([]core.Target, 0, len(rs))
	for _, r := range rs {
		out = append(out, core.Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net})
	}
	return out
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printSummary(w *os.File, rs *core.ResultSet, vantage string, targets []core.Target) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Response times from %s", vantage),
		Headers: []string{"Resolver", "N", "Median (ms)", "P90 (ms)", "Ping (ms)", "Errors"},
	}
	av := rs.Availability()
	for _, target := range targets {
		samples := rs.QuerySamples(vantage, target.Host)
		pings := rs.PingSamples(vantage, target.Host)
		med, p90, ping := "-", "-", "-"
		if len(samples) > 0 {
			med = fmt.Sprintf("%.1f", stats.Median(samples))
			p90 = fmt.Sprintf("%.1f", stats.Quantile(samples, 0.9))
		}
		if len(pings) > 0 {
			ping = fmt.Sprintf("%.1f", stats.Median(pings))
		}
		t.AddRow(target.Host, fmt.Sprintf("%d", len(samples)), med, p90, ping,
			fmt.Sprintf("%d", av.ByResolver[target.Host]))
	}
	return t.Render(w)
}
