// Command dohserver runs a complete encrypted-DNS resolver: one caching
// recursive resolver (iterating over a built-in authoritative hierarchy
// for the measurement domains, or forwarding to an upstream) exposed over
// three frontends at once — Do53 (UDP+TCP), DoT, and DoH. It is the
// server-side substrate of the reproduction and a live target for
// dnsmeasure -mode live.
//
// On startup it writes its self-signed CA certificate to -ca-out so
// clients can trust the TLS endpoints:
//
//	dohserver -do53 127.0.0.1:5353 -dot 127.0.0.1:8853 -doh 127.0.0.1:8443
//	curl --cacert /tmp/dohserver-ca.pem "https://127.0.0.1:8443/dns-query?name=google.com&type=A"
package main

import (
	"context"
	"encoding/pem"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/certs"
	"encdns/internal/cluster"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/dot"
	"encdns/internal/monitor"
	"encdns/internal/obs"
	"encdns/internal/resolver"
	"encdns/internal/transport"
	"encdns/internal/udpbatch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dohserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		do53Addr = flag.String("do53", "127.0.0.1:5353", "Do53 listen address (UDP+TCP); empty disables")
		dotAddr  = flag.String("dot", "127.0.0.1:8853", "DoT listen address; empty disables")
		dohAddr  = flag.String("doh", "127.0.0.1:8443", "DoH listen address; empty disables")
		caOut    = flag.String("ca-out", "/tmp/dohserver-ca.pem", "write the CA certificate here")
		upstream = flag.String("forward", "", "forward to this upstream Do53 server instead of recursing locally")
		zoneFile = flag.String("zone", "", "serve this RFC 1035 zone file authoritatively instead of resolving")
		zoneOrig = flag.String("zone-origin", ".", "origin of -zone")
		cacheN   = flag.Int("cache", 65536, "cache entries")
		prefetch = flag.Float64("prefetch", 0.1, "refresh-ahead fraction: a cache hit inside this final fraction of its TTL triggers a background re-resolution (and, in cluster mode, hot-set replication); 0 disables")
		verbose  = flag.Bool("v", false, "debug-level logging")

		udpSockets = flag.Int("udp-sockets", 1, "SO_REUSEPORT UDP sockets for Do53 (Linux; >1 spreads receive load)")
		udpWorkers = flag.Int("udp-workers", 0, "UDP worker-pool size; 0 means 32*GOMAXPROCS (min 64)")
		udpBatch   = flag.Int("udp-batch", 0, "max datagrams per batched read/write; 0 means 32, 1 disables batching")
		maxConns   = flag.Int("max-conns", 4096, "max concurrent connections per stream listener (Do53/TCP, DoT, DoH); 0 unlimited")
		idleTO     = flag.Duration("idle-timeout", 60*time.Second, "disconnect stream clients idle this long")

		peers     = flag.String("peers", "", "comma-separated remote peer endpoints (e.g. udp://127.0.0.1:5302,udp://127.0.0.1:5303); enables cluster mode")
		clusterID = flag.String("cluster-id", "encdns", "cluster identity carried on forwarded queries; must match on every peer")
		replicas  = flag.Int("replicas", cluster.DefaultReplicas, "hot-set copies beyond the owner; negative disables replication")
	)
	flag.Parse()
	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level)

	handler, cache, err := buildHandler(*upstream, *zoneFile, *zoneOrig, *cacheN)
	if err != nil {
		return err
	}
	if rec, ok := handler.(*resolver.Recursive); ok {
		rec.PrefetchFraction = *prefetch
	}
	if cache != nil {
		defer cache.Close()
	}
	localHandler := handler // the unwrapped resolver, for ordered shutdown

	// Cluster mode: wrap the local resolver in a ring-routing node. This
	// instance's cluster ID is its own Do53 endpoint as peers dial it, so
	// every member derives the same ring from the same peer strings.
	var node *cluster.Node
	var peerPool *transport.Pool
	if *peers != "" {
		if *do53Addr == "" {
			return fmt.Errorf("cluster mode needs -do53 (peers forward over Do53)")
		}
		selfID := "udp://" + *do53Addr
		var remotes []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				remotes = append(remotes, p)
			}
		}
		peerPool = transport.NewPool(transport.Options{Reuse: true})
		node = &cluster.Node{
			Members: cluster.NewMembership(selfID, remotes, monitor.Config{
				Interval: time.Second,
			}, 0),
			Local:     handler,
			Forward:   peerPool,
			Cache:     cache,
			ClusterID: *clusterID,
			Replicas:  *replicas,
		}
		if rec, ok := handler.(*resolver.Recursive); ok {
			rec.OnPrefetch = node.NoteHot // hot-set replication rides refresh-ahead
		}
		handler = node
		logger.Info("cluster mode", "self", selfID, "peers", len(remotes),
			"cluster-id", *clusterID, "replicas", *replicas)
	}

	inner := &dns53.Server{
		Handler:     handler,
		Logger:      logger,
		UDPWorkers:  *udpWorkers,
		UDPBatch:    *udpBatch,
		ReadTimeout: *idleTO, // doubles as the per-read stream idle timeout
	}

	ca, err := certs.NewCA(0)
	if err != nil {
		return err
	}
	if *caOut != "" {
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
		if err := os.WriteFile(*caOut, pemBytes, 0o644); err != nil {
			return fmt.Errorf("writing CA: %w", err)
		}
		logger.Info("wrote CA certificate", "path", *caOut)
	}
	tlsCfg, err := ca.ServerConfig([]string{"localhost"}, []net.IP{net.ParseIP("127.0.0.1"), net.ParseIP("::1")})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 4)

	if node != nil {
		// Active probing is what re-admits a Down peer: no forwards are
		// routed to it, so only probes can observe it healthy again.
		go node.ProbeLoop(ctx, time.Second)
	}

	if *do53Addr != "" {
		pcs, err := udpbatch.Listen("udp", *do53Addr, *udpSockets)
		if err != nil {
			return fmt.Errorf("do53 udp: %w", err)
		}
		ln, err := net.Listen("tcp", *do53Addr)
		if err != nil {
			return fmt.Errorf("do53 tcp: %w", err)
		}
		for _, pc := range pcs {
			go func() { errCh <- inner.ServeUDP(pc) }()
		}
		go func() { errCh <- inner.ServeTCP(transport.LimitListener(ln, *maxConns, 0, "do53-tcp")) }()
		logger.Info("do53 listening", "addr", *do53Addr, "udp-sockets", len(pcs))
	}
	if *dotAddr != "" {
		ln, err := net.Listen("tcp", *dotAddr)
		if err != nil {
			return fmt.Errorf("dot: %w", err)
		}
		defer ln.Close()
		srv := &dot.Server{DNS: inner, TLS: tlsCfg}
		// The conn cap rejects fast at the TCP layer; idle disconnects come
		// from the dns53 read deadline, so LimitListener's own idle stays 0.
		go func() { errCh <- srv.Serve(transport.LimitListener(ln, *maxConns, 0, "dot")) }()
		logger.Info("dot listening", "addr", *dotAddr)
	}
	var httpSrv *http.Server
	if *dohAddr != "" {
		mux := http.NewServeMux()
		mux.Handle(doh.DefaultPath, &doh.Handler{DNS: handler})
		// Introspection rides the same mux: /metrics (Prometheus text),
		// /debug/obs (JSON snapshot), and /debug/pprof (profiles).
		obs.RegisterRuntimeMetrics(obs.Default())
		introspection := obs.NewHTTPHandler(obs.Default())
		mux.Handle("/metrics", introspection)
		mux.Handle("/debug/", introspection)
		httpSrv = &http.Server{
			Handler:     mux,
			TLSConfig:   tlsCfg.Clone(),
			IdleTimeout: *idleTO,
		}
		ln, err := net.Listen("tcp", *dohAddr)
		if err != nil {
			return fmt.Errorf("doh: %w", err)
		}
		go func() { errCh <- httpSrv.ServeTLS(transport.LimitListener(ln, *maxConns, 0, "doh"), "", "") }()
		logger.Info("doh listening", "addr", *dohAddr, "path", doh.DefaultPath)
	}

	select {
	case <-ctx.Done():
		// Ordered drain, extending the dns53 shutdown sequence across the
		// cluster layer: stop accepting (front ends), finish what is in
		// flight (server workers, which includes queries blocked on peer
		// forwards), drain the node's own background work (replication
		// pushes, probes), and only then tear down the peer transport and
		// resolver so nothing in flight loses its dependencies.
		logger.Info("shutting down")
		if httpSrv != nil {
			_ = httpSrv.Close()
		}
		inner.Shutdown()
		if node != nil {
			node.Close()
		}
		if peerPool != nil {
			_ = peerPool.Close()
		}
		if rec, ok := localHandler.(*resolver.Recursive); ok {
			rec.Close() // drains refresh-ahead goroutines before cache.Close
		}
		return nil
	case err := <-errCh:
		if err != nil {
			return err
		}
		return nil
	}
}

// buildHandler assembles the resolver: an authoritative zone when -zone
// is given, a forwarder when -forward is given, otherwise a recursive
// resolver over the built-in hierarchy.
func buildHandler(upstream, zoneFile, zoneOrigin string, cacheN int) (dns53.Handler, *resolver.Cache, error) {
	if zoneFile != "" {
		f, err := os.Open(zoneFile)
		if err != nil {
			return nil, nil, fmt.Errorf("opening zone: %w", err)
		}
		defer f.Close()
		h, err := authdns.ParseZone(zoneOrigin, f)
		return h, nil, err
	}
	cache := resolver.NewCache(cacheN, nil)
	if upstream != "" {
		client := &dns53.Client{}
		return &resolver.Forwarder{
			Exchange:  exchangeVia(client),
			Upstreams: []string{upstream},
			Cache:     cache,
		}, cache, nil
	}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	return &resolver.Recursive{
		Exchange: h.Registry,
		Roots:    h.RootServers,
		Cache:    cache,
	}, cache, nil
}

// clientExchanger adapts dns53.Client to the resolver.Exchanger interface.
type clientExchanger struct{ c *dns53.Client }

func exchangeVia(c *dns53.Client) resolver.Exchanger { return clientExchanger{c} }

func (e clientExchanger) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	return e.c.Exchange(ctx, q, server)
}
