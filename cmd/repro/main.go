// Command repro regenerates every table and figure of the paper from one
// simulated campaign and writes them under -out (default ./out):
//
//	table1.txt                    Table 1 (browser matrix)
//	availability.txt              §4 availability counts and error classes
//	fig1.txt .. fig4d.txt         Figures 1–4 (boxplot charts), plus .csv
//	table2.txt table3.txt         Tables 2–3 (remote-vantage medians)
//	shape-checks.txt              the §4 claims, evaluated pass/fail
//	results.jsonl                 the raw per-query records
//
// Use -only to regenerate a single artefact and -rounds/-seed to rescale
// the campaign.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"encdns/internal/experiment"
	"encdns/internal/obs"
	"encdns/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", "out", "output directory")
		seed    = fs.Uint64("seed", 1, "campaign seed")
		rounds  = fs.Int("rounds", experiment.DefaultRounds, "campaign rounds")
		only    = fs.String("only", "", "regenerate one artefact: table1|table2|table3|availability|shape|ablation|drift|homevsec2|figN[x]|results")
		metrics = fs.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/obs on this address during the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" {
		obs.RegisterRuntimeMetrics(obs.Default())
		bound, shutdown, err := obs.Serve(*metrics, obs.Default())
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "serving /metrics, /debug/obs, and /debug/pprof on %s\n", bound)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	r := experiment.New(*seed, *rounds)

	want := func(name string) bool { return *only == "" || *only == name }
	wrote := 0

	if want("table1") {
		if err := writeArtefact(*outDir, "table1.txt", func(f io.Writer) error {
			return experiment.Table1().Render(f)
		}); err != nil {
			return err
		}
		wrote++
	}
	if want("availability") {
		av, err := r.Availability()
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "availability.txt", av.Render); err != nil {
			return err
		}
		wrote++
	}
	for _, id := range experiment.AllFigures() {
		// -only fig2 regenerates the whole fig2 panel set; -only fig2c one
		// panel.
		if *only != "" && !strings.HasPrefix(string(id), *only) {
			continue
		}
		chart, err := r.Figure(id)
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, string(id)+".txt", chart.Render); err != nil {
			return err
		}
		if err := writeArtefact(*outDir, string(id)+".csv", func(f io.Writer) error {
			return report.ChartCSV(chart, f)
		}); err != nil {
			return err
		}
		if err := writeArtefact(*outDir, string(id)+".svg", func(f io.Writer) error {
			return report.ChartSVG(chart, f)
		}); err != nil {
			return err
		}
		wrote++
	}
	if want("table2") {
		t2, err := r.Table2()
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "table2.txt", t2.Render); err != nil {
			return err
		}
		wrote++
	}
	if want("table3") {
		t3, err := r.Table3()
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "table3.txt", t3.Render); err != nil {
			return err
		}
		wrote++
	}
	if want("shape") {
		checks, err := r.ShapeChecks()
		if err != nil {
			return err
		}
		failed := 0
		for _, c := range checks {
			if !c.Pass {
				failed++
			}
		}
		if err := writeArtefact(*outDir, "shape-checks.txt", func(f io.Writer) error {
			return experiment.RenderChecks(f, checks)
		}); err != nil {
			return err
		}
		fmt.Printf("shape checks: %d/%d pass\n", len(checks)-failed, len(checks))
		wrote++
	}
	if want("ablation") {
		// Design-choice ablation: protocol × connection mode for a
		// representative single-site resolver from Ohio.
		rows, err := experiment.ProtocolAblation(*seed, "ec2-ohio", "doh.la.ahadns.net", *rounds*2)
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "ablation.txt", func(f io.Writer) error {
			return experiment.RenderAblation(f, "ec2-ohio", "doh.la.ahadns.net", rows)
		}); err != nil {
			return err
		}
		wrote++
	}
	if want("homevsec2") {
		rep, err := r.HomeVsEC2()
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "homevsec2.txt", rep.Render); err != nil {
			return err
		}
		wrote++
	}
	if want("drift") {
		// §3.2 stability check: the 2023 main span vs the Feb/Mar/Apr
		// 2024 follow-up spans from the Ohio vantage.
		rep, err := experiment.DriftCheck(*seed, "ec2-ohio", *rounds, 0.5)
		if err != nil {
			return err
		}
		if err := writeArtefact(*outDir, "drift.txt", rep.Render); err != nil {
			return err
		}
		wrote++
	}
	if want("results") {
		rs, err := r.Results()
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, "results.jsonl")
		if err := rs.WriteJSONFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", path, rs.Len())
		wrote++
	}

	if *only == "" || *only == "index" {
		if err := writeIndex(*outDir); err != nil {
			return err
		}
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("unknown artefact %q", *only)
	}
	fmt.Printf("regenerated %d artefact group(s) in %s/\n", wrote, *outDir)
	return nil
}

// writeIndex emits an index.html linking every artefact present in the
// output directory, with the SVG figures inlined for browsing.
func writeIndex(outDir string) error {
	entries, err := os.ReadDir(outDir)
	if err != nil {
		return err
	}
	var svgs, texts, csvs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".svg"):
			svgs = append(svgs, name)
		case strings.HasSuffix(name, ".txt"):
			texts = append(texts, name)
		case strings.HasSuffix(name, ".csv"):
			csvs = append(csvs, name)
		}
	}
	sort.Strings(svgs)
	sort.Strings(texts)
	sort.Strings(csvs)

	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>encdns reproduction artefacts</title>` +
		`<style>body{font-family:Helvetica,Arial,sans-serif;max-width:1040px;margin:2em auto;padding:0 1em}` +
		`img{max-width:100%;border:1px solid #ddd;margin:8px 0}` +
		`li{margin:2px 0}</style></head><body>` + "\n")
	sb.WriteString("<h1>Reproduction artefacts</h1>\n")
	sb.WriteString("<p>Generated by <code>cmd/repro</code>; the experiment index lives in DESIGN.md, paper-vs-measured in EXPERIMENTS.md.</p>\n")
	sb.WriteString("<h2>Tables, checks, and reports</h2>\n<ul>\n")
	for _, name := range texts {
		fmt.Fprintf(&sb, `<li><a href="%s">%s</a></li>`+"\n", name, name)
	}
	sb.WriteString("</ul>\n<h2>Raw data</h2>\n<ul>\n")
	for _, name := range csvs {
		fmt.Fprintf(&sb, `<li><a href="%s">%s</a></li>`+"\n", name, name)
	}
	if _, err := os.Stat(filepath.Join(outDir, "results.jsonl")); err == nil {
		sb.WriteString(`<li><a href="results.jsonl">results.jsonl</a> (per-query records)</li>` + "\n")
	}
	sb.WriteString("</ul>\n<h2>Figures</h2>\n")
	for _, name := range svgs {
		fmt.Fprintf(&sb, `<h3>%s</h3><img src="%s" alt="%s">`+"\n", name, name, name)
	}
	sb.WriteString("</body></html>\n")

	path := filepath.Join(outDir, "index.html")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeArtefact renders into outDir/name via the callback.
func writeArtefact(outDir, name string, render func(io.Writer) error) error {
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("rendering %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
