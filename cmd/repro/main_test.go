package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encdns/internal/core"
)

func TestReproAllArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full artefact regeneration is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-rounds", "12", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	// Every artefact family must be present.
	wanted := []string{
		"table1.txt", "table2.txt", "table3.txt",
		"availability.txt", "shape-checks.txt", "ablation.txt",
		"drift.txt", "homevsec2.txt", "results.jsonl",
		"fig1.txt", "fig1.csv", "fig1.svg",
		"fig2a.txt", "fig3d.svg", "fig4b.csv",
	}
	for _, name := range wanted {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artefact %s is empty", name)
		}
	}
	// The raw records parse back.
	rs, err := core.ReadJSONFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 7*75*4*12 {
		t.Errorf("records = %d", rs.Len())
	}
}

func TestReproSingleArtefact(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-rounds", "8", "-only", "table2"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Seoul (ms)") {
		t.Errorf("table2 content:\n%s", b)
	}
	// Nothing else generated.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("extra artefacts: %v", entries)
	}
}

func TestReproFigureFamily(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-rounds", "6", "-only", "fig4"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	// 4 panels × 3 formats.
	if len(entries) != 12 {
		t.Errorf("fig4 family produced %d files", len(entries))
	}
}

func TestReproUnknownArtefact(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-only", "fig99zz"}); err == nil {
		t.Error("unknown artefact accepted")
	}
}

func TestReproIndex(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-rounds", "6", "-only", "fig1"}); err != nil {
		t.Fatal(err)
	}
	// Index regenerates on demand over whatever exists.
	if err := run([]string{"-out", dir, "-rounds", "6", "-only", "index"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	html := string(b)
	for _, want := range []string{"<h1>Reproduction artefacts</h1>", "fig1.svg", "fig1.txt", "fig1.csv"} {
		if !strings.Contains(html, want) {
			t.Errorf("index missing %q", want)
		}
	}
}
