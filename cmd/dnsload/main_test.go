package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSelfDo53OpenLoopJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "do53",
		"-rate", "200", "-duration", "500ms", "-arrivals", "constant",
		"-timeout", "1s", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	var s struct {
		Mode      string  `json:"mode"`
		Offered   uint64  `json:"offered"`
		Received  uint64  `json:"received"`
		ErrorRate float64 `json:"error_rate"`
		P99Ms     float64 `json:"p99_ms"`
	}
	// -json output must be pure JSON (no banner lines) so scripts can
	// pipe it straight into a decoder.
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if s.Mode != "open" || s.Offered == 0 || s.Received == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	if s.ErrorRate > 0.05 {
		t.Fatalf("error rate %.2f against the in-process Do53 server", s.ErrorRate)
	}
	if s.P99Ms <= 0 {
		t.Fatalf("p99 %.3fms, want > 0", s.P99Ms)
	}
}

func TestSelfDoHClosedLoop(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "doh",
		"-mode", "closed", "-workers", "4", "-duration", "500ms",
		"-timeout", "2s",
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "closed loop") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if strings.Contains(out, "received 0,") {
		t.Fatalf("no DoH exchanges succeeded:\n%s", out)
	}
}

func TestSelfDo53CapacityCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "do53", "-capacity",
		"-ramp-start", "200", "-ramp-max", "400", "-ramp-step", "200",
		"-step-duration", "400ms", "-cooldown", "50ms",
		"-slo-p99", "500ms", "-slo-errors", "0.2",
		"-csv",
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "Rate (qps)") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	// Both tiny rungs must appear (the in-process server sustains 400qps).
	if !strings.Contains(out, "200,") || !strings.Contains(out, "400,") {
		t.Fatalf("ramp rungs missing:\n%s", out)
	}
}

func TestFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                      // no targets
		{"-targets", "ftp://x"}, // bad scheme
		{"-self", "dot"},        // unsupported self target
		{"-targets", "1.1.1.1", "-mode", "sideways"},
		{"-targets", "1.1.1.1", "-arrivals", "fibonacci"},
		{"-targets", "1.1.1.1", "-qtypes", "BOGUS"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestSelfRecursiveOpenLoopJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "recursive",
		"-rate", "200", "-duration", "500ms", "-arrivals", "constant",
		"-timeout", "2s", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	var s struct {
		Mode      string  `json:"mode"`
		Offered   uint64  `json:"offered"`
		Received  uint64  `json:"received"`
		ErrorRate float64 `json:"error_rate"`
		P99Ms     float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if s.Mode != "open" || s.Offered == 0 || s.Received == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	// The recursive self target serves the measurement domains from its
	// in-memory hierarchy; after the first walks everything is cache-hot,
	// so errors mean the resolver stack is broken, not slow.
	if s.ErrorRate > 0.05 {
		t.Fatalf("error rate %.2f against the in-process recursive resolver", s.ErrorRate)
	}
	if s.P99Ms <= 0 {
		t.Fatalf("p99 %.3fms, want > 0", s.P99Ms)
	}
}
