// Command dnsload generates DNS load against scheme-addressed resolver
// endpoints and reports coordinated-omission-safe latency. It is the
// capacity half of the measurement story: dnsmeasure asks "how fast does
// a resolver answer one probe", dnsload asks "how much offered load can
// a resolver absorb before its tail latency or error rate breaks".
//
// Open loop (default) paces arrivals on a constant or Poisson schedule
// and measures every query from its *intended* start, so a stalling
// server shows up as tail latency instead of quietly slowing the
// client down. Closed loop runs N request→response→think workers.
//
//	dnsload -targets udp://127.0.0.1:53 -rate 500 -duration 10s
//	dnsload -targets 'udp://10.0.0.1=3,https://10.0.0.1/dns-query=1' -rate 1000 -json
//	dnsload -mode closed -workers 32 -targets tls://127.0.0.1:853 -insecure
//	dnsload -capacity -ramp-start 500 -ramp-max 20000 -ramp-step 500 -targets udp://127.0.0.1:53
//	dnsload -self do53 -capacity -json          # benchmark the in-process Do53 server
//	dnsload -self doh -duration 2s -rate 200    # smoke the in-process DoH stack
//	dnsload -self recursive -capacity -json     # capacity of the full recursive resolver
//
// -self spins up an in-process server (do53 over loopback UDP, doh over
// loopback TLS with an ephemeral CA, recursive = the caching recursive
// resolver with SRTT selection/hedging/prefetch over the in-memory
// authoritative hierarchy) and aims the generator at it: the repo
// measuring its own server stack end to end through real sockets.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/doh"
	"encdns/internal/loadgen"
	"encdns/internal/monitor"
	"encdns/internal/obs"
	"encdns/internal/resolver"
	"encdns/internal/transport"
	"encdns/internal/udpbatch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnsload:", err)
		os.Exit(1)
	}
}

// selfDomain is the name the -self servers answer; the default mix asks
// it when -self is active so every query resolves.
const selfDomain = "bench.example."

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dnsload", flag.ContinueOnError)
	var (
		targets = fs.String("targets", "", "weighted endpoint mix: target[=weight],... (udp://, tcp://, tls://, https://; bare hosts follow -proto)")
		proto   = fs.String("proto", "", "scheme for bare -targets entries: do53/udp (default), tcp, dot/tls, doh/https")
		mode    = fs.String("mode", "open", "generation discipline: open (scheduled arrivals) or closed (workers)")
		rate    = fs.Float64("rate", 100, "open-loop offered load, queries/second")
		arrive  = fs.String("arrivals", "poisson", "open-loop arrival process: constant or poisson")
		workers = fs.Int("workers", 8, "closed-loop worker count")
		think   = fs.Duration("think", 0, "closed-loop pause between a response and the worker's next query")
		dur     = fs.Duration("duration", 10*time.Second, "run length")
		timeout = fs.Duration("timeout", 2*time.Second, "per-query timeout")
		inFlt   = fs.Int("max-inflight", 4096, "open-loop in-flight bound; arrivals beyond it are dropped, not queued")
		seed    = fs.Uint64("seed", 1, "RNG seed for arrivals and the query mix (same seed, same workload)")
		qtypes  = fs.String("qtypes", "A", "weighted QTYPE mix: TYPE[=weight],... e.g. A=10,AAAA=3,HTTPS=1")
		zipfS   = fs.Float64("zipf", loadgen.DefaultZipfS, "Zipf popularity exponent over the domain list; <=1 draws uniformly")
		domains = fs.String("domains", "", "comma-separated query names (default: the paper's measurement domains)")

		capacity = fs.Bool("capacity", false, "ramp offered load and report the max rate where the SLO holds")
		rStart   = fs.Float64("ramp-start", 500, "capacity ramp: first offered rate, qps")
		rMax     = fs.Float64("ramp-max", 20000, "capacity ramp: last offered rate, qps")
		rStep    = fs.Float64("ramp-step", 500, "capacity ramp: rate increment, qps")
		stepDur  = fs.Duration("step-duration", 2*time.Second, "capacity ramp: how long each rate is offered")
		cooldown = fs.Duration("cooldown", 200*time.Millisecond, "capacity ramp: pause between steps so backlogs drain")
		sloP99   = fs.Duration("slo-p99", 50*time.Millisecond, "SLO: p99 latency bound; 0 disables")
		sloErr   = fs.Float64("slo-errors", 0.01, "SLO: max (errors+drops)/offered")

		metrics  = fs.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/obs, /debug/watch, and /debug/pprof on this address during the run")
		jsonOut  = fs.Bool("json", false, "write the result as JSON")
		csvOut   = fs.Bool("csv", false, "write the per-second timeline (or ramp steps) as CSV")
		caCert   = fs.String("cacert", "", "PEM file with a CA to trust for TLS transports")
		insecure = fs.Bool("insecure", false, "skip TLS certificate verification")
		reuse    = fs.Bool("reuse", true, "keep connections between exchanges (load tests measure steady state, not handshakes)")
		self     = fs.String("self", "", "serve an in-process target and load it: do53, doh, or recursive (ignores -targets)")

		selfSockets = fs.Int("self-udp-sockets", 1, "-self do53/recursive: SO_REUSEPORT UDP sockets (Linux)")
		selfWorkers = fs.Int("self-udp-workers", 0, "-self do53/recursive: UDP worker-pool size; 0 means 32*GOMAXPROCS (min 64)")
		selfBatch   = fs.Int("self-udp-batch", 0, "-self do53/recursive: max datagrams per batched read/write; 0 means 32, 1 disables batching")
		selfTmpl    = fs.Bool("self-template", true, "-self recursive: serve cache hits from wire-format answer templates; false forces materialize+repack (A/B baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tlsCfg, err := tlsConfig(*caCert, *insecure)
	if err != nil {
		return err
	}

	mix := &loadgen.Mix{ZipfS: *zipfS}
	if *domains != "" {
		for _, d := range strings.Split(*domains, ",") {
			if d = strings.TrimSpace(d); d != "" {
				mix.Domains = append(mix.Domains, d)
			}
		}
	}
	if mix.QTypes, err = loadgen.ParseQTypeMix(*qtypes); err != nil {
		return err
	}

	switch *self {
	case "":
		if *targets == "" {
			return fmt.Errorf("need -targets (or -self do53|doh)")
		}
		if mix.Endpoints, err = loadgen.ParseTargetMix(*targets, *proto); err != nil {
			return err
		}
	case "do53", "doh", "recursive":
		endpoint, clientTLS, stop, err := startSelf(*self, selfOptions{
			sockets: *selfSockets, workers: *selfWorkers, batch: *selfBatch,
			templates: *selfTmpl,
		})
		if err != nil {
			return err
		}
		defer stop()
		tlsCfg = clientTLS
		mix.Endpoints = []loadgen.WeightedEndpoint{{Endpoint: endpoint, Weight: 1}}
		if len(mix.Domains) == 0 && *self != "recursive" {
			// The static self servers only answer selfDomain; the recursive
			// target serves the full in-memory hierarchy, so the default
			// measurement-domain mix exercises real referral walks.
			mix.Domains = []string{selfDomain}
		}
		if !*jsonOut && !*csvOut {
			fmt.Fprintf(w, "# self target: %s\n", endpoint)
		}
	default:
		return fmt.Errorf("unknown -self %q (want do53, doh, or recursive)", *self)
	}

	topts := transport.Options{
		Timeout: *timeout,
		TLS:     tlsCfg,
		Reuse:   *reuse,
	}
	if *metrics != "" {
		// Per-endpoint health and windowed latency during the load run:
		// the transport outcome hook feeds a watchtower tracker served
		// next to the scrape endpoint. One-second buckets match load-test
		// cadence (dnsmeasure's default 10s suits probing cadence).
		obs.RegisterRuntimeMetrics(obs.Default())
		tracker := monitor.New(monitor.Config{Interval: time.Second})
		topts.OnOutcome = func(endpoint string, rtt time.Duration, err error) {
			class := ""
			if err != nil {
				class = transport.Classify(err).String()
			}
			tracker.ObserveProbe(endpoint, err == nil, rtt, class)
		}
		bound, shutdown, err := obs.ServeHandler(*metrics,
			obs.NewHTTPHandler(obs.Default(), obs.WithWatch(tracker)))
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "introspection: http://%s (/metrics /debug/obs /debug/watch /debug/pprof)\n", bound)
	}
	sender := loadgen.NewSender(topts)
	defer sender.Close()

	cfg := loadgen.Config{
		Rate:        *rate,
		Workers:     *workers,
		Think:       *think,
		Duration:    *dur,
		Timeout:     *timeout,
		MaxInFlight: *inFlt,
		Seed:        *seed,
		Mix:         mix,
	}
	switch *mode {
	case "open":
		cfg.Mode = loadgen.OpenLoop
	case "closed":
		cfg.Mode = loadgen.ClosedLoop
	default:
		return fmt.Errorf("unknown -mode %q (want open or closed)", *mode)
	}
	switch *arrive {
	case "constant":
		cfg.Arrivals = loadgen.ArrivalConstant
	case "poisson":
		cfg.Arrivals = loadgen.ArrivalPoisson
	default:
		return fmt.Errorf("unknown -arrivals %q (want constant or poisson)", *arrive)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *capacity {
		ramp := loadgen.Ramp{Start: *rStart, Max: *rMax, Step: *rStep, StepDuration: *stepDur, Cooldown: *cooldown}
		slo := loadgen.SLO{P99: *sloP99, MaxErrorRate: *sloErr}
		cr, err := loadgen.SearchCapacity(ctx, sender.Send, cfg, ramp, slo)
		if err != nil {
			return err
		}
		switch {
		case *jsonOut:
			return loadgen.WriteCapacityJSON(w, cr)
		case *csvOut:
			return loadgen.CapacityTable(cr).WriteCSV(w)
		default:
			if err := loadgen.CapacityTable(cr).Render(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nmax sustainable: %.0f qps (achieved %.0f qps) under p99<%s errors<%.1f%%\n",
				cr.MaxSustainableQPS, cr.Achieved, *sloP99, *sloErr*100)
			return err
		}
	}

	res, err := loadgen.Run(ctx, sender.Send, cfg)
	if err != nil && res == nil {
		return err
	}
	switch {
	case *jsonOut:
		return loadgen.WriteJSON(w, res)
	case *csvOut:
		return loadgen.TimelineTable(res).WriteCSV(w)
	default:
		s := loadgen.Summarize(res)
		fmt.Fprintf(w, "%s loop, %.1fs: offered %d, sent %d, received %d, errors %d, dropped %d\n",
			s.Mode, s.Duration, s.Offered, s.Sent, s.Received, s.Errors, s.Dropped)
		fmt.Fprintf(w, "throughput %.0f qps, error rate %.2f%%\n", s.ActualQPS, s.ErrorRate*100)
		fmt.Fprintf(w, "latency p50 %.2fms p90 %.2fms p99 %.2fms p999 %.2fms mean %.2fms max %.2fms\n",
			s.P50Ms, s.P90Ms, s.P99Ms, s.P999Ms, s.MeanMs, s.MaxMs)
		return loadgen.TimelineTable(res).Render(w)
	}
}

// selfOptions tunes the -self UDP frontends: listener socket count
// (SO_REUSEPORT fan-out), worker-pool size, batch depth, and whether the
// recursive target's cache serves hits from wire templates.
type selfOptions struct {
	sockets, workers, batch int
	templates               bool
}

// serveSelfUDP binds the configured number of reuseport sockets on a
// fresh loopback port and serves each on srv, returning the shared
// endpoint address.
func serveSelfUDP(srv *dns53.Server, opts selfOptions) (string, error) {
	pcs, err := udpbatch.Listen("udp", "127.0.0.1:0", opts.sockets)
	if err != nil {
		return "", err
	}
	for _, pc := range pcs {
		go srv.ServeUDP(pc)
	}
	return pcs[0].LocalAddr().String(), nil
}

// startSelf boots an in-process server over real loopback sockets and
// returns the endpoint to load, the client TLS config that trusts it
// (doh only), and a stop function.
func startSelf(kind string, opts selfOptions) (endpoint string, clientTLS *tls.Config, stop func(), err error) {
	handler := dns53.Static(map[string][]net.IP{
		selfDomain: {net.ParseIP("192.0.2.1")},
	})
	switch kind {
	case "do53":
		srv := &dns53.Server{Handler: handler, UDPWorkers: opts.workers, UDPBatch: opts.batch}
		addr, err := serveSelfUDP(srv, opts)
		if err != nil {
			return "", nil, nil, err
		}
		return "udp://" + addr, nil, srv.Shutdown, nil
	case "recursive":
		// The full resolver stack: a caching recursive resolver with SRTT
		// selection, hedging, and refresh-ahead over the in-memory
		// authoritative hierarchy, fronted by a real loopback UDP server —
		// the capacity baseline recorded in BENCH_pr5.json.
		h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
		cache := resolver.NewCache(65536, nil)
		cache.NoTemplates = !opts.templates
		rec := &resolver.Recursive{
			Exchange:         h.Registry,
			Roots:            h.RootServers,
			Cache:            cache,
			Infra:            resolver.NewInfra(nil),
			Hedge:            true,
			PrefetchFraction: 0.1,
		}
		srv := &dns53.Server{Handler: rec, UDPWorkers: opts.workers, UDPBatch: opts.batch}
		addr, err := serveSelfUDP(srv, opts)
		if err != nil {
			return "", nil, nil, err
		}
		stop = func() {
			srv.Shutdown()
			rec.Close()
		}
		return "udp://" + addr, nil, stop, nil
	case "doh":
		ca, err := certs.NewCA(0)
		if err != nil {
			return "", nil, nil, err
		}
		serverTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
		if err != nil {
			return "", nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, nil, err
		}
		mux := http.NewServeMux()
		mux.Handle(doh.DefaultPath, &doh.Handler{DNS: handler})
		hs := &http.Server{Handler: mux, TLSConfig: serverTLS}
		go hs.ServeTLS(ln, "", "")
		endpoint := "https://" + ln.Addr().String() + doh.DefaultPath
		return endpoint, ca.ClientConfig("127.0.0.1"), func() { hs.Close() }, nil
	}
	return "", nil, nil, fmt.Errorf("unknown self target %q", kind)
}

func tlsConfig(caCert string, insecure bool) (*tls.Config, error) {
	if caCert == "" && !insecure {
		return nil, nil
	}
	cfg := &tls.Config{InsecureSkipVerify: insecure}
	if caCert != "" {
		pemBytes, err := os.ReadFile(caCert)
		if err != nil {
			return nil, fmt.Errorf("reading CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return nil, fmt.Errorf("no certificates in %s", caCert)
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}
