package encdns_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"encdns"
	"encdns/internal/authdns"
	"encdns/internal/doh"
	"encdns/internal/resolver"
)

// TestFacadeSimCampaign drives the public API end to end in sim mode, the
// README quickstart path.
func TestFacadeSimCampaign(t *testing.T) {
	var targets []encdns.Target
	for _, r := range encdns.Resolvers() {
		if r.Host == "dns.google" || r.Host == "ordns.he.net" {
			targets = append(targets, encdns.Targets([]encdns.Resolver{r})...)
		}
	}
	if len(targets) != 2 {
		t.Fatalf("targets = %d", len(targets))
	}
	var seoul encdns.Vantage
	for _, v := range encdns.Vantages() {
		if v.Name == "ec2-seoul" {
			seoul = v
		}
	}
	cfg := encdns.CampaignConfig{
		Vantages: []encdns.Vantage{seoul},
		Targets:  targets,
		Domains:  encdns.Domains,
		Rounds:   10,
		Interval: time.Hour,
	}
	prober := &encdns.SimProber{Net: encdns.NewNet(encdns.NetConfig{Seed: 1})}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results.Len() != 10*2*4 {
		t.Errorf("records = %d", results.Len())
	}
	chart := encdns.BuildChart(results, "facade", encdns.Resolvers()[:0], seoul.Name)
	if chart == nil {
		t.Fatal("nil chart")
	}
}

// TestFacadeLiveClients exercises the public client constructors against a
// real in-process DoH server.
func TestFacadeLiveClients(t *testing.T) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{
		Exchange: h.Registry, Roots: h.RootServers,
		Cache: resolver.NewCache(1024, nil), RNGSeed: 1,
	}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()

	prober := &encdns.LiveProber{Transport: encdns.NewTransportPool(
		encdns.TransportOptions{HTTPClient: ts.Client(), Reuse: true})}
	cfg := encdns.CampaignConfig{
		Vantages: []encdns.Vantage{{Name: "local"}},
		Targets:  []encdns.Target{{Host: "t", Endpoint: ts.URL + doh.DefaultPath}},
		Domains:  []string{"google.com"},
		Rounds:   2,
		Interval: time.Nanosecond,
		Clock:    encdns.WallClock{},
		SkipPing: true,
	}
	campaign, err := encdns.NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	av := results.Availability()
	if av.Errors != 0 || av.Successes != 2 {
		t.Errorf("availability = %+v", av)
	}
}

// TestFacadeRunner reproduces a figure through the public Runner.
func TestFacadeRunner(t *testing.T) {
	r := encdns.NewRunner(1, 10)
	chart, err := r.Figure(encdns.Fig4d)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Rows) != 18 {
		t.Errorf("fig4d rows = %d", len(chart.Rows))
	}
}

// TestFacadeClientConstructors checks the protocol client helpers build
// usable values.
func TestFacadeClientConstructors(t *testing.T) {
	if c := encdns.NewDoHClient(nil, nil, true); c == nil || c.HTTP == nil {
		t.Error("DoH client")
	}
	if c := encdns.NewDoTClient(nil, true); c == nil || !c.Reuse {
		t.Error("DoT client")
	}
	if c := encdns.NewDo53Client(); c == nil {
		t.Error("Do53 client")
	}
}
