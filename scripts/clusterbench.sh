#!/bin/sh
# clusterbench.sh — capacity of a real 3-process loopback resolver
# cluster vs a single instance, on the PR4 ramp (dnsload -capacity).
#
#   scripts/clusterbench.sh [outfile]        # default BENCH_cluster.json
#
# Methodology: an "instance" is a fixed slice of the machine. When the
# cgroup v1 cpu controller is writable (this box), every dohserver gets
# a cpu.cfs quota of CG_QUOTA_US per CG_PERIOD_US (default 0.15 CPU), so
# the single-instance baseline cannot silently eat the whole machine the
# three cluster members later share — without the budget, a 1-core host
# would make any cluster speedup arithmetically impossible and a 16-core
# host would hand the baseline 16 instances' worth of silicon. The
# default budget leaves roughly half a core for dnsload itself, which
# shares the machine and has to generate every query the cluster serves;
# the short 20ms period keeps CFS throttle stalls far below the 50ms
# p99 SLO so the ramp measures capacity, not throttle jitter. Where
# cgroups are unavailable (CI runners), the comparison still runs
# unbudgeted and the ratio is reported for what it is.
#
# The cluster run warms the hot set first (dnsload at a modest rate) so
# refresh-ahead marks the popular names hot and replicates them to every
# replica; the capacity ramp then measures the replicated steady state.
# After the ramp the nodes' /metrics are scraped to compute the
# cross-peer forwarded-miss rate (cluster_forwards_total over
# dns53_server_requests_total) — the partition-efficiency headline.
#
# Output: one JSON array (benchjson.sh merge) with objects labelled
# "single", "cluster", and "cluster-forwarding".
set -eu

OUT=${1:-BENCH_cluster.json}
BIN=${BIN:-/tmp/encdns-clusterbench}
CG_ROOT=/sys/fs/cgroup/cpu
CG_QUOTA_US=${CG_QUOTA_US:-3000}
CG_PERIOD_US=${CG_PERIOD_US:-20000}
RAMP="-ramp-start ${RAMP_START:-250} -ramp-step ${RAMP_STEP:-250} -ramp-max ${RAMP_MAX:-30000} -step-duration ${STEP_DUR:-2s}"
CLUSTER_ID=bench
SCRIPTDIR=$(dirname "$0")

mkdir -p "$BIN"
go build -o "$BIN" ./cmd/dohserver ./cmd/dnsload

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# Probe with a throwaway subgroup: period must land before quota (a
# quota below the current period's floor is EINVAL), and parent groups
# that once held children can wedge into rejecting new quotas.
have_cgroups=false
if [ -w "$CG_ROOT" ] && mkdir -p "$CG_ROOT/encdns-bench/probe" 2>/dev/null \
    && echo "$CG_PERIOD_US" > "$CG_ROOT/encdns-bench/probe/cpu.cfs_period_us" 2>/dev/null \
    && echo "$CG_QUOTA_US" > "$CG_ROOT/encdns-bench/probe/cpu.cfs_quota_us" 2>/dev/null; then
    have_cgroups=true
fi
rmdir "$CG_ROOT/encdns-bench/probe" 2>/dev/null || true

# start_instance <n> <do53-port> <doh-port> <peers>
start_instance() {
    n=$1 port=$2 doh=$3 peers=$4
    "$BIN/dohserver" -do53 "127.0.0.1:$port" -dot "" -doh "127.0.0.1:$doh" \
        -ca-out "/tmp/encdns-bench-ca$n.pem" -prefetch 1 -cache 131072 \
        ${peers:+-peers "$peers" -cluster-id "$CLUSTER_ID"} \
        >"/tmp/encdns-bench-node$n.log" 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    if $have_cgroups; then
        cg="$CG_ROOT/encdns-bench/inst$n"
        mkdir -p "$cg"
        echo "$CG_PERIOD_US" > "$cg/cpu.cfs_period_us"
        echo "$CG_QUOTA_US" > "$cg/cpu.cfs_quota_us"
        echo "$pid" > "$cg/cgroup.procs"
    fi
}

wait_ready() { # <do53-port>...
    for port in "$@"; do
        i=0
        until "$BIN/dnsload" -targets "udp://127.0.0.1:$port" -duration 200ms -rate 5 -json \
                2>/dev/null | grep -q '"sent"'; do
            i=$((i + 1))
            [ "$i" -lt 25 ] || { echo "instance on :$port never came up" >&2; exit 1; }
        done
    done
}

echo "== single instance (cgroup budget: $have_cgroups)" >&2
start_instance 0 5311 8451 ""
wait_ready 5311
"$BIN/dnsload" -targets udp://127.0.0.1:5311 -capacity $RAMP -json \
    | "$SCRIPTDIR/benchjson.sh" capacity single > /tmp/encdns-bench-single.json
cleanup
PIDS=""

echo "== 3-instance cluster" >&2
p1=udp://127.0.0.1:5301 p2=udp://127.0.0.1:5302 p3=udp://127.0.0.1:5303
start_instance 1 5301 8441 "$p2,$p3"
start_instance 2 5302 8442 "$p1,$p3"
start_instance 3 5303 8443 "$p1,$p2"
wait_ready 5301 5302 5303
TARGETS="$p1=1,$p2=1,$p3=1"

# Warm the hot set: every node sees the popular names, owners resolve
# them, refresh-ahead (-prefetch 1) replicates them to both replicas.
"$BIN/dnsload" -targets "$TARGETS" -duration 4s -rate 300 -json >/dev/null

"$BIN/dnsload" -targets "$TARGETS" -capacity $RAMP -json \
    | "$SCRIPTDIR/benchjson.sh" capacity cluster > /tmp/encdns-bench-cluster.json

# Forwarded-miss rate across the whole run, from each node's metrics.
fwd=0 req=0
for n in 1 2 3; do
    m=$(curl -s --cacert "/tmp/encdns-bench-ca$n.pem" "https://127.0.0.1:$((8440 + n))/metrics")
    f=$(printf '%s\n' "$m" | awk '/^cluster_forwards_total/ { s += $NF } END { printf "%d", s }')
    r=$(printf '%s\n' "$m" | awk '/^dns53_server_requests_total/ { s += $NF } END { printf "%d", s }')
    fwd=$((fwd + f)) req=$((req + r))
done
rate=$(awk -v f="$fwd" -v r="$req" 'BEGIN { printf "%.4f", r ? f / r : 0 }')
printf '{"target": "cluster-forwarding", "forwards": %d, "requests": %d, "forwarded_miss_rate": %s}\n' \
    "$fwd" "$req" "$rate" > /tmp/encdns-bench-fwd.json
cleanup
PIDS=""

cat /tmp/encdns-bench-single.json /tmp/encdns-bench-cluster.json /tmp/encdns-bench-fwd.json \
    | "$SCRIPTDIR/benchjson.sh" merge > "$OUT"
echo "wrote $OUT" >&2
cat "$OUT"
