#!/bin/sh
# benchjson.sh — convert `go test -bench` output (stdin) into a
# machine-readable JSON array (stdout), one object per benchmark line:
#
#   [
#     {"name": "BenchmarkPack", "procs": 4, "iterations": 100,
#      "ns_per_op": 535.5, "bytes_per_op": 0, "allocs_per_op": 0}
#   ]
#
# CI pipes the hot-path microbenchmarks through this to produce
# BENCH_pr3.json; any `-benchtime`/`-cpu` combination parses the same way.
# Fields the run did not report (no -benchmem, b.ReportAllocs absent) are
# emitted as null.
#
# A second mode handles dnsload capacity output:
#
#   dnsload -self do53 -capacity -json | scripts/benchjson.sh capacity
#
# emits one flat JSON object with the headline fields
# (max_sustainable_qps, achieved_qps, *_at_max) extracted line-by-line
# from dnsload's indented JSON — no JSON parser required, which is the
# point of keeping those keys unique at the top level. An optional second
# argument labels the object so multiple capacity runs (do53 echo server,
# recursive resolver, ...) can sit side by side in one artifact:
#
#   ... | scripts/benchjson.sh capacity recursive
#
# adds "target": "recursive" to the output.
#
# A third mode assembles several such one-object lines (stdin) into one
# JSON array, so a sweep — capacity at different batch sizes, before and
# after a change — lands in a single artifact:
#
#   for b in 1 8 32; do
#     dnsload -self do53 -self-udp-batch $b -capacity -json |
#       scripts/benchjson.sh capacity "batch-$b"
#   done | scripts/benchjson.sh merge > BENCH.json
#
# A fourth mode, `flat`, parses `go test -bench` output like the default
# mode but emits one object per LINE (no array wrapper), so
# microbenchmark rows can flow through `merge` next to capacity rows in
# a single artifact:
#
#   { go test -bench ServeHit -benchmem ./internal/resolver |
#       scripts/benchjson.sh flat
#     dnsload -self recursive -capacity -json |
#       scripts/benchjson.sh capacity recursive
#   } | scripts/benchjson.sh merge > BENCH_pr10.json
set -eu

if [ "${1:-}" = "merge" ]; then
    exec awk '
    NF {
        if (n++) printf ","
        printf "\n  %s", $0
    }
    END { printf n ? "\n]\n" : "]\n" }
    BEGIN { printf "[" }
    '
fi

if [ "${1:-}" = "capacity" ]; then
    exec awk -v target="${2:-}" '
    function grab(key,   re) {
        re = "\"" key "\":"
        if ($0 ~ re && !(key in seen)) {
            v = $2
            sub(/,$/, "", v)
            seen[key] = v
        }
    }
    {
        grab("max_sustainable_qps"); grab("achieved_qps")
        grab("p50_ms_at_max"); grab("p99_ms_at_max")
        grab("p999_ms_at_max"); grab("error_rate_at_max")
    }
    END {
        printf "{"
        n = split("max_sustainable_qps achieved_qps p50_ms_at_max p99_ms_at_max p999_ms_at_max error_rate_at_max", keys, " ")
        first = 1
        if (target != "") {
            printf "\"target\": \"%s\"", target
            first = 0
        }
        for (i = 1; i <= n; i++) {
            k = keys[i]
            v = (k in seen) ? seen[k] : "null"
            if (!first) printf ", "
            printf "\"%s\": %s", k, v
            first = 0
        }
        printf "}\n"
    }
    '
fi

if [ "${1:-}" = "flat" ]; then
    exec awk '
    $1 ~ /^Benchmark/ && NF >= 3 {
        name = $1
        procs = 1
        if (match(name, /-[0-9]+$/)) {
            procs = substr(name, RSTART + 1, RLENGTH - 1) + 0
            name = substr(name, 1, RSTART - 1)
        }
        ns = "null"; bytes = "null"; allocs = "null"
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op")     ns = $i
            if ($(i + 1) == "B/op")      bytes = $i
            if ($(i + 1) == "allocs/op") allocs = $i
        }
        if (ns == "null") next
        printf "{\"name\": \"%s\", \"procs\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", \
            name, procs, $2, ns, bytes, allocs
    }
    '
fi

awk '
BEGIN { n = 0; printf "[" }
$1 ~ /^Benchmark/ && $3 == "ns/op" || ($1 ~ /^Benchmark/ && NF >= 3) {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1, RLENGTH - 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "B/op")      bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "null") next
    if (n++) printf ","
    printf "\n  {\"name\": \"%s\", \"procs\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, procs, $2, ns, bytes, allocs
}
END { printf "\n]\n" }
'
