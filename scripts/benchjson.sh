#!/bin/sh
# benchjson.sh — convert `go test -bench` output (stdin) into a
# machine-readable JSON array (stdout), one object per benchmark line:
#
#   [
#     {"name": "BenchmarkPack", "procs": 4, "iterations": 100,
#      "ns_per_op": 535.5, "bytes_per_op": 0, "allocs_per_op": 0}
#   ]
#
# CI pipes the hot-path microbenchmarks through this to produce
# BENCH_pr3.json; any `-benchtime`/`-cpu` combination parses the same way.
# Fields the run did not report (no -benchmem, b.ReportAllocs absent) are
# emitted as null.
set -eu

awk '
BEGIN { n = 0; printf "[" }
$1 ~ /^Benchmark/ && $3 == "ns/op" || ($1 ~ /^Benchmark/ && NF >= 3) {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1, RLENGTH - 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "B/op")      bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "null") next
    if (n++) printf ","
    printf "\n  {\"name\": \"%s\", \"procs\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, procs, $2, ns, bytes, allocs
}
END { printf "\n]\n" }
'
