#!/bin/sh
# benchgate.sh — hot-path benchmark regression gate.
#
#   go test -bench 'ServeUDP$|ServeHit' -benchmem ./internal/... > bench.out
#   scripts/benchgate.sh BENCH_pr10.json bench.out
#
# Reads the committed baseline artifact (a benchjson.sh array containing a
# BenchmarkServeUDP row) and a fresh `go test -bench` text output, then
# enforces two invariants the wire-template PR established:
#
#   1. BenchmarkServeUDP ns/op must not regress more than GATE_PCT percent
#      (default 15) over the committed baseline. CI runners are noisy, so
#      the tolerance is generous; a real regression (reintroducing a pack
#      or an alloc on the hit path) blows well past it.
#   2. BenchmarkServeHitTemplate must stay at least 2x faster than
#      BenchmarkServeHitMaterialized — the PR's acceptance floor. This
#      compares two numbers from the SAME run, so it is immune to runner
#      speed and catches the fast path silently degrading to a repack.
#
# Either check failing exits non-zero; a missing benchmark in the fresh
# output fails too (a gate that cannot find its subject must not pass).
# Missing baseline rows only warn: the artifact predating a new benchmark
# is expected during bring-up, and check 2 still guards the hit path.
set -eu

baseline=${1:?usage: benchgate.sh BASELINE.json [bench.out]}
bench=${2:--}

# current <name> -> ns/op from the go test text output, strictly matched.
current() {
    awk -v want="$1" '
    $1 ~ /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (name != want) next
        for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") { print $i; exit }
    }
    ' "$tmp"
}

# base <name> -> ns_per_op from the committed benchjson array.
base() {
    jq -r --arg n "$1" '[.[] | select(.name == $n)][0].ns_per_op // empty' \
        "$baseline"
}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
if [ "$bench" = "-" ]; then cat > "$tmp"; else cat "$bench" > "$tmp"; fi

fail=0
pct=${GATE_PCT:-15}

# Check 1: ServeUDP against the committed baseline.
cur=$(current BenchmarkServeUDP)
if [ -z "$cur" ]; then
    echo "benchgate: BenchmarkServeUDP missing from bench output" >&2
    fail=1
else
    ref=$(base BenchmarkServeUDP)
    if [ -z "$ref" ]; then
        echo "benchgate: warn: no BenchmarkServeUDP row in $baseline (skipping)" >&2
    else
        limit=$(awk -v r="$ref" -v p="$pct" 'BEGIN { printf "%.1f", r * (1 + p / 100) }')
        over=$(awk -v c="$cur" -v l="$limit" 'BEGIN { print (c > l) ? 1 : 0 }')
        if [ "$over" = 1 ]; then
            echo "benchgate: FAIL ServeUDP ${cur} ns/op > ${limit} ns/op (baseline ${ref} +${pct}%)" >&2
            fail=1
        else
            echo "benchgate: ok ServeUDP ${cur} ns/op <= ${limit} ns/op (baseline ${ref} +${pct}%)"
        fi
    fi
fi

# Check 2: template hit path >= 2x faster than materialize, same run.
t=$(current BenchmarkServeHitTemplate)
m=$(current BenchmarkServeHitMaterialized)
if [ -z "$t" ] || [ -z "$m" ]; then
    echo "benchgate: FAIL ServeHit benchmarks missing from bench output" >&2
    fail=1
else
    ok=$(awk -v t="$t" -v m="$m" 'BEGIN { print (m >= 2 * t) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "benchgate: ok template hit ${t} ns/op vs materialized ${m} ns/op ($(awk -v t="$t" -v m="$m" 'BEGIN { printf "%.1f", m / t }')x)"
    else
        echo "benchgate: FAIL template hit ${t} ns/op not 2x faster than materialized ${m} ns/op" >&2
        fail=1
    fi
fi

exit $fail
