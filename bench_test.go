// Benchmarks regenerating every table and figure of the paper (one bench
// per artefact, as DESIGN.md's experiment index maps), plus substrate
// micro-benchmarks. Reproduction benches rebuild their campaign from
// scratch each iteration, so ns/op is the full cost of regenerating the
// artefact from nothing.
package encdns_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/distribute"
	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/experiment"
	"encdns/internal/netsim"
	"encdns/internal/odoh"
	"encdns/internal/pageload"
	"encdns/internal/resolver"
	"encdns/internal/stats"
)

// benchRounds keeps reproduction benches fast while still producing
// hundreds of samples per (vantage, resolver) pair.
const benchRounds = 20

// BenchmarkTable1BrowserMatrix regenerates Table 1.
func BenchmarkTable1BrowserMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiment.Table1()
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFigures regenerates a set of figure panels from a fresh campaign.
func benchFigures(b *testing.B, ids ...experiment.FigureID) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiment.New(uint64(i+1), benchRounds)
		for _, id := range ids {
			chart, err := r.Figure(id)
			if err != nil {
				b.Fatal(err)
			}
			if err := chart.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (NA resolvers from Ohio).
func BenchmarkFigure1(b *testing.B) { benchFigures(b, experiment.Fig1) }

// BenchmarkFigure2 regenerates Figure 2's four panels (NA resolvers from
// all vantage points).
func BenchmarkFigure2(b *testing.B) {
	benchFigures(b, experiment.Fig2a, experiment.Fig2b, experiment.Fig2c, experiment.Fig2d)
}

// BenchmarkFigure3 regenerates Figure 3's four panels (Europe).
func BenchmarkFigure3(b *testing.B) {
	benchFigures(b, experiment.Fig3a, experiment.Fig3b, experiment.Fig3c, experiment.Fig3d)
}

// BenchmarkFigure4 regenerates Figure 4's four panels (Asia).
func BenchmarkFigure4(b *testing.B) {
	benchFigures(b, experiment.Fig4a, experiment.Fig4b, experiment.Fig4c, experiment.Fig4d)
}

// BenchmarkTable2 regenerates Table 2 (Asia medians, Seoul vs Frankfurt).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.New(uint64(i+1), benchRounds)
		tbl, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (Europe medians, Frankfurt vs Seoul).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.New(uint64(i+1), benchRounds)
		tbl, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailabilityCampaign regenerates the §4 availability tally
// from a fresh full campaign (7 vantages × 75 resolvers × 3 domains).
func BenchmarkAvailabilityCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.New(uint64(i+1), benchRounds)
		av, err := r.Availability()
		if err != nil {
			b.Fatal(err)
		}
		if err := av.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShapeChecks evaluates every §4 claim from a fresh campaign.
func BenchmarkShapeChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.New(uint64(i+1), benchRounds)
		checks, err := r.ShapeChecks()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range checks {
			if !c.Pass {
				b.Fatalf("claim failed under bench seed: %s (%s)", c.Name, c.Detail)
			}
		}
	}
}

// BenchmarkProtocolAblation regenerates the protocol × connection-mode
// ablation table (the design-choice study behind §2.2's related work).
func BenchmarkProtocolAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.ProtocolAblation(uint64(i+1), dataset.VantageOhio, "doh.la.ahadns.net", 60)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiment.RenderAblation(io.Discard, dataset.VantageOhio, "doh.la.ahadns.net", rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftCheck runs the §3.2 stability check (main span + three
// follow-up spans) from Ohio.
func BenchmarkDriftCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiment.DriftCheck(uint64(i+1), dataset.VantageOhio, benchRounds, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkMessagePack measures DNS wire encoding of a realistic response.
func BenchmarkMessagePack(b *testing.B) {
	m := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA).Reply()
	for i := 0; i < 4; i++ {
		m.Answers = append(m.Answers, dnswire.Record{
			Name: "www.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	m.SetEDNS(dnswire.MaxEDNSSize, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageUnpack measures DNS wire decoding.
func BenchmarkMessageUnpack(b *testing.B) {
	m := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA).Reply()
	for i := 0; i < 4; i++ {
		m.Answers = append(m.Answers, dnswire.Record{
			Name: "www.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimQuery measures one modelled DoH transaction.
func BenchmarkSimQuery(b *testing.B) {
	net := netsim.New(netsim.Config{Seed: 1})
	r, _ := dataset.ResolverByHost("dns.google")
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := net.Query(v, &r.Net, netsim.ProtoDoH, false, i, "google.com")
		if res.Duration <= 0 && res.Err == netsim.OK {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkCacheLookup measures a resolver cache hit.
func BenchmarkCacheLookup(b *testing.B) {
	c := resolver.NewCache(4096, nil)
	rr := dnswire.Record{
		Name: "google.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.A{Addr: netip.MustParseAddr("142.250.64.78")},
	}
	c.PutRRset("google.com.", dnswire.TypeA, []dnswire.Record{rr})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup("google.com.", dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkRecursiveResolveCached measures a full stub query against the
// recursive resolver once its cache is warm — the §3.2 common case
// ("most people query sites that are already in cache").
func BenchmarkRecursiveResolveCached(b *testing.B) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{
		Exchange: h.Registry, Roots: h.RootServers,
		Cache: resolver.NewCache(4096, nil), RNGSeed: 1,
	}
	ctx := context.Background()
	if _, err := rec.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := rec.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "google.com", dnswire.TypeA))
		if err != nil || len(resp.Answers) == 0 {
			b.Fatal("resolve failed")
		}
	}
}

// BenchmarkRecursiveResolveCold measures a full root-to-leaf walk.
func BenchmarkRecursiveResolveCold(b *testing.B) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &resolver.Recursive{Exchange: h.Registry, Roots: h.RootServers,
			Cache: resolver.NewCache(4096, nil), RNGSeed: 1}
		resp, err := rec.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "google.com", dnswire.TypeA))
		if err != nil || len(resp.Answers) == 0 {
			b.Fatal("resolve failed")
		}
	}
}

// BenchmarkLiveDoHQuery measures a real RFC 8484 exchange over a loopback
// TLS connection with connection reuse.
func BenchmarkLiveDoHQuery(b *testing.B) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{Exchange: h.Registry, Roots: h.RootServers,
		Cache: resolver.NewCache(4096, nil), RNGSeed: 1}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	client := &doh.Client{HTTP: ts.Client()}
	ctx := context.Background()
	endpoint := ts.URL + doh.DefaultPath
	if _, err := client.Query(ctx, endpoint, "google.com", dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(ctx, endpoint, "google.com", dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignThroughput measures raw simulated-campaign speed in
// queries per second (reported as ns/op per query).
func BenchmarkCampaignThroughput(b *testing.B) {
	prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: 1})}
	targets := experiment.Targets(dataset.Resolvers())
	v := dataset.EC2Vantages()
	b.ResetTimer()
	queries := 0
	for i := 0; i < b.N; i++ {
		cfg := core.CampaignConfig{
			Vantages: v, Targets: targets, Domains: dataset.Domains,
			Rounds: 5, Interval: time.Hour, SkipPing: true,
		}
		c, err := core.NewCampaign(cfg, prober)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		queries += rs.Len()
	}
	b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkODoHSealOpen measures a full oblivious encapsulation round
// trip: client seal → target open → target seal → client open.
func BenchmarkODoHSealOpen(b *testing.B) {
	key, err := odoh.NewTargetKey(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := odoh.ParseConfig(key.Config())
	if err != nil {
		b.Fatal(err)
	}
	query, _ := dnswire.NewQuery(1, "google.com", dnswire.TypeA).Pack()
	response, _ := dnswire.NewQuery(1, "google.com", dnswire.TypeA).Reply().Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, qctx, err := cfg.Seal(query)
		if err != nil {
			b.Fatal(err)
		}
		_, responder, err := key.OpenQuery(sealed)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := responder.Seal(response)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := qctx.Open(sr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributionStrategies evaluates every distribution strategy
// over a Zipf workload (experiment X1).
func BenchmarkDistributionStrategies(b *testing.B) {
	hosts := []string{"dns.google", "dns.quad9.net", "ordns.he.net",
		"freedns.controld.com", "dns0.eu"}
	var pool []dataset.Resolver
	for _, h := range hosts {
		r, ok := dataset.ResolverByHost(h)
		if !ok {
			b.Fatal(h)
		}
		pool = append(pool, r)
	}
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	targets := experiment.Targets(pool)
	w := distribute.SyntheticWorkload(100, 500, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: uint64(i + 1)})}
		for _, s := range []distribute.Strategy{
			distribute.Single{Index: 0},
			distribute.RoundRobin{N: len(targets)},
			distribute.HashDomain{N: len(targets)},
			distribute.NewRace(len(targets), 2, uint64(i+1)),
		} {
			d := &distribute.Distributor{Targets: targets, Vantage: v, Prober: prober, Strategy: s}
			r := distribute.Evaluate(ctx, d, w)
			if r.QueriesSent == 0 {
				b.Fatal("no queries sent")
			}
		}
	}
}

// BenchmarkPageLoadComparison runs the resolver-choice → page-load-time
// experiment (X2: the paper's future work).
func BenchmarkPageLoadComparison(b *testing.B) {
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	var targets []core.Target
	for _, h := range []string{"dns.google", "doh.ffmuc.net"} {
		r, ok := dataset.ResolverByHost(h)
		if !ok {
			b.Fatal(h)
		}
		targets = append(targets, core.Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: uint64(i + 1)})}
		out := pageload.Compare(ctx, prober, v, targets, pageload.TypicalPage(), 20)
		if len(out) != 2 {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkBoxplotSummarize measures the stats pipeline on a realistic
// sample set.
func BenchmarkBoxplotSummarize(b *testing.B) {
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = float64(i%97) + 20
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Summarize(samples); err != nil {
			b.Fatal(err)
		}
	}
}
