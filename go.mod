module encdns

go 1.24
